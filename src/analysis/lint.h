#ifndef NBCP_ANALYSIS_LINT_H_
#define NBCP_ANALYSIS_LINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/state_graph.h"
#include "fsa/protocol_spec.h"

namespace nbcp {

enum class LintSeverity : uint8_t {
  kWarning = 0,  ///< Suspicious but not disqualifying.
  kError = 1,    ///< The spec cannot behave as a commit protocol.
};

std::string ToString(LintSeverity severity);

/// Role index used for protocol-level findings.
inline constexpr RoleIndex kNoRole = -1;

/// One lint finding.
///
/// Codes (stable identifiers, used by tests and the JSON report):
///   errors —
///     no-initial-state        role automaton lacks a unique initial state
///     no-commit-state         role has no commit state
///     no-abort-state          role has no abort state
///     cyclic                  role's state diagram has a cycle
///     unreachable-state       state unreachable from the initial state
///     final-state-outgoing    commit/abort state has outgoing transitions
///     empty-trigger-group     message trigger with no source group
///     empty-send-group        send with no addressee group
///     group-paradigm-mismatch group meaningless under the spec's paradigm
///     unsatisfiable-trigger   trigger group resolves empty at every site
///                             executing the role
///     request-unroutable      client-request trigger in a role that never
///                             receives the request
///     unsent-message-trigger  trigger on a message type no role sends
///     deadlock                reachable non-final global state with no
///                             enabled transition (failure-free!)
///     spec-invalid            ProtocolSpec::Validate failure not covered
///                             by a more specific code
///   warnings —
///     dead-message            message type sent but never consumed
///     state-never-occupied    state never occupied in the reachable graph
///     transition-never-fires  transition enabled in no reachable state
///     not-synchronous         not synchronous within one transition (the
///                             buffer-synthesis precondition)
///     graph-truncated         reachable graph hit max_nodes; graph-based
///                             verdicts cover only the explored prefix
///     graph-unavailable       reachable graph could not be built; graph-
///                             based checks skipped
struct LintFinding {
  LintSeverity severity = LintSeverity::kWarning;
  std::string code;
  RoleIndex role = kNoRole;  ///< kNoRole for protocol-level findings.
  std::string message;

  std::string ToString() const;
};

struct LintReport {
  std::vector<LintFinding> findings;

  bool HasErrors() const;
  size_t NumErrors() const;
  size_t NumWarnings() const;
  bool Has(const std::string& code) const;

  std::string ToString() const;
};

/// Lints `spec` for an n-site population: structural checks on each role
/// automaton and the paradigm/group pairing, plus reachability-based checks
/// over the state graph. Pass a prebuilt `graph` (reduced or not — every
/// graph-based check is class-invariant) to avoid rebuilding; with nullptr
/// a graph is built internally (and its truncation reported). Spec-invalid
/// inputs yield findings rather than an error — that is the point of lint.
LintReport LintProtocol(const ProtocolSpec& spec, size_t n,
                        const ReachableStateGraph* graph = nullptr);

}  // namespace nbcp

#endif  // NBCP_ANALYSIS_LINT_H_
