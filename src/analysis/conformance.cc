#include "analysis/conformance.h"

#include <algorithm>
#include <sstream>

#include "protocols/protocols.h"

namespace nbcp {

std::optional<PredictedFiring> PredictNextFiring(
    const ProtocolSpec& spec, size_t n, SiteId site, StateIndex state,
    const std::map<std::pair<std::string, SiteId>, int>& inbox,
    std::optional<bool> vote, bool vote_cast) {
  const Automaton& a = spec.role(spec.RoleForSite(site, n));
  if (IsFinal(a.state(state).kind)) return std::nullopt;
  // The engine consults the vote lazily but the preset never changes, so
  // resolving it eagerly is equivalent (the default is yes).
  bool v = vote.value_or(true);

  for (size_t ti : a.TransitionsFrom(state)) {
    const Transition& t = a.transitions()[ti];
    switch (t.trigger.kind) {
      case TriggerKind::kClientRequest: {
        auto key = std::make_pair(std::string(msg::kRequest), kNoSite);
        if (inbox.count(key) == 0) break;
        if (t.votes_yes && !v) break;
        if (t.votes_no && v) break;
        return PredictedFiring{ti, {key}, false};
      }
      case TriggerKind::kOneFrom: {
        for (SiteId sender : spec.ResolveGroup(t.trigger.group, site, n)) {
          auto key = std::make_pair(t.trigger.msg_type, sender);
          if (inbox.count(key) == 0) continue;
          if (t.votes_yes && !v) continue;
          if (t.votes_no && v) continue;
          return PredictedFiring{ti, {key}, false};
        }
        break;
      }
      case TriggerKind::kAllFrom: {
        if (t.votes_yes && !v) break;
        if (t.votes_no && v) break;
        std::vector<std::pair<std::string, SiteId>> wanted;
        bool all_present = true;
        for (SiteId sender : spec.ResolveGroup(t.trigger.group, site, n)) {
          auto key = std::make_pair(t.trigger.msg_type, sender);
          if (inbox.count(key) == 0) {
            all_present = false;
            break;
          }
          wanted.push_back(std::move(key));
        }
        if (!all_present) break;
        return PredictedFiring{ti, std::move(wanted), false};
      }
      case TriggerKind::kAnyFrom: {
        for (SiteId sender : spec.ResolveGroup(t.trigger.group, site, n)) {
          auto key = std::make_pair(t.trigger.msg_type, sender);
          if (inbox.count(key) == 0) continue;
          return PredictedFiring{ti, {key}, false};
        }
        if (t.trigger.or_self_vote_no && !vote_cast && !v) {
          return PredictedFiring{ti, {}, /*self_vote=*/true};
        }
        break;
      }
    }
  }
  return std::nullopt;
}

std::string ToString(ConformanceIssueKind kind) {
  switch (kind) {
    case ConformanceIssueKind::kUnknownState:
      return "unknown-state";
    case ConformanceIssueKind::kUnexplainedTransition:
      return "unexplained-transition";
    case ConformanceIssueKind::kTransitionMismatch:
      return "transition-mismatch";
    case ConformanceIssueKind::kSendMismatch:
      return "send-mismatch";
    case ConformanceIssueKind::kVoteMismatch:
      return "vote-mismatch";
    case ConformanceIssueKind::kDecisionMismatch:
      return "decision-mismatch";
    case ConformanceIssueKind::kAtomicityViolation:
      return "atomicity-violation";
    case ConformanceIssueKind::kCommitWithoutYes:
      return "commit-without-yes";
    case ConformanceIssueKind::kUndecidedTerminal:
      return "undecided-terminal";
  }
  return "unknown";
}

std::string ConformanceIssue::ToString() const {
  std::ostringstream out;
  out << nbcp::ToString(kind) << " @t=" << at;
  if (site != kNoSite) out << " site " << site;
  out << ": " << detail;
  return out.str();
}

ConformanceChecker::ConformanceChecker(const ProtocolSpec* spec, size_t n,
                                       const ReachableStateGraph* graph,
                                       TransactionId txn,
                                       std::vector<bool> votes)
    : spec_(spec),
      n_(n),
      graph_(graph),
      txn_(txn),
      votes_(std::move(votes)),
      mirror_(MakeInitialGlobalState(*spec, n)),
      sites_(n) {
  node_index_.reserve(graph_->num_nodes());
  for (size_t i = 0; i < graph_->num_nodes(); ++i) {
    node_index_.emplace(graph_->node(i).Key(), i);
  }
  auto it = node_index_.find(mirror_.Key());
  if (it != node_index_.end()) visited_.insert(it->second);
}

void ConformanceChecker::Degrade(const char* why) {
  (void)why;
  degraded_ = true;
}

void ConformanceChecker::AddDivergence(ConformanceIssueKind kind,
                                       const TraceEvent& e,
                                       std::string detail) {
  divergences_.push_back(
      ConformanceIssue{kind, e.at, e.site, std::move(detail)});
}

void ConformanceChecker::AddViolation(ConformanceIssueKind kind, SimTime at,
                                      SiteId site, std::string detail) {
  for (const ConformanceIssue& v : violations_) {
    if (v.kind == kind) return;  // Report each invariant class once.
  }
  violations_.push_back(ConformanceIssue{kind, at, site, std::move(detail)});
}

void ConformanceChecker::OnEvent(const TraceEvent& e) {
  if (e.txn != kNoTransaction && e.txn != txn_) return;
  switch (e.type) {
    case TraceEventType::kProtocolStart: {
      if (degraded_) return;
      sites_[e.site - 1].inbox[{std::string(msg::kRequest), kNoSite}] += 1;
      return;
    }
    case TraceEventType::kMessageDelivered: {
      if (degraded_) return;
      size_t sep = e.detail.find("<-");
      if (sep == std::string::npos) return;
      std::string type = e.detail.substr(0, sep);
      SiteId from =
          static_cast<SiteId>(std::stoul(e.detail.substr(sep + 2)));
      sites_[e.site - 1].inbox[{std::move(type), from}] += 1;
      return;
    }
    case TraceEventType::kMessageSent: {
      if (degraded_) return;
      size_t sep = e.detail.find("->");
      if (sep == std::string::npos) return;
      std::string type = e.detail.substr(0, sep);
      SiteId to = static_cast<SiteId>(std::stoul(e.detail.substr(sep + 2)));
      sites_[e.site - 1].observed_sends.emplace_back(std::move(type), to);
      return;
    }
    case TraceEventType::kVoteCast: {
      if (degraded_) return;
      sites_[e.site - 1].observed_vote = (e.detail == "yes");
      return;
    }
    case TraceEventType::kStateChange:
      OnStateChange(e);
      return;
    case TraceEventType::kDecision:
    case TraceEventType::kTerminationDecide: {
      Outcome outcome = e.detail == "committed" ? Outcome::kCommitted
                                                : Outcome::kAborted;
      sites_[e.site - 1].observed_outcome = outcome;
      if (degraded_ || e.type == TraceEventType::kTerminationDecide) return;
      size_t i = e.site - 1;
      StateKind kind = RoleOf(e.site).state(mirror_.local[i]).kind;
      bool matches = (outcome == Outcome::kCommitted &&
                      kind == StateKind::kCommit) ||
                     (outcome == Outcome::kAborted &&
                      kind == StateKind::kAbort);
      if (!matches) {
        AddDivergence(ConformanceIssueKind::kDecisionMismatch, e,
                      "decision '" + e.detail + "' but local state is '" +
                          RoleOf(e.site).state(mirror_.local[i]).name + "'");
      }
      return;
    }
    case TraceEventType::kMessageDropped:
      Degrade("message dropped");
      return;
    case TraceEventType::kCrash:
      Degrade("crash");
      return;
    case TraceEventType::kRecover:
      Degrade("recovery");
      return;
    case TraceEventType::kTerminationStart:
      Degrade("termination engaged");
      return;
    case TraceEventType::kBlocked:
      Degrade("blocked verdict");
      return;
    case TraceEventType::kElectionWon:
      Degrade("election");
      return;
    case TraceEventType::kLinkCut:
    case TraceEventType::kLinkRestored:
      Degrade("link topology change");
      return;
    case TraceEventType::kGlobalState:
    case TraceEventType::kInvariantViolation:
      return;  // Observer chatter; not part of the execution itself.
  }
}

void ConformanceChecker::OnStateChange(const TraceEvent& e) {
  if (degraded_) return;
  size_t i = e.site - 1;
  SiteMirror& sm = sites_[i];

  auto predicted =
      PredictNextFiring(*spec_, n_, e.site, mirror_.local[i], sm.inbox,
                        votes_[i], sm.vote_cast);
  if (!predicted.has_value()) {
    AddDivergence(ConformanceIssueKind::kUnexplainedTransition, e,
                  "no enabled transition of the spec explains moving to '" +
                      e.detail + "'");
    Degrade("mirror lost");
    return;
  }
  const Automaton& a = RoleOf(e.site);
  const Transition& t = a.transitions()[predicted->transition];
  if (a.state(t.to).name != e.detail) {
    AddDivergence(ConformanceIssueKind::kTransitionMismatch, e,
                  "spec fires '" + t.Label() + "' into '" + a.state(t.to).name +
                      "' but the implementation entered '" + e.detail + "'");
    Degrade("mirror lost");
    return;
  }

  // Vote check. The runtime traces only the site's first cast (later
  // re-affirmations are suppressed), so a vote event is expected exactly
  // when this transition casts and none was cast before.
  bool casts_vote = predicted->self_vote ||
                    t.trigger.kind != TriggerKind::kAnyFrom;
  bool votes_now = casts_vote && (t.votes_yes || t.votes_no);
  if (votes_now && !sm.vote_cast) {
    if (!sm.observed_vote.has_value() ||
        *sm.observed_vote != t.votes_yes) {
      AddDivergence(
          ConformanceIssueKind::kVoteMismatch, e,
          std::string("transition casts '") + (t.votes_yes ? "yes" : "no") +
              "' but the implementation " +
              (sm.observed_vote.has_value()
                   ? std::string("cast '") +
                         (*sm.observed_vote ? "yes" : "no") + "'"
                   : std::string("cast no vote")));
    }
  } else if (sm.observed_vote.has_value()) {
    AddDivergence(ConformanceIssueKind::kVoteMismatch, e,
                  "implementation cast a vote on a non-voting transition");
  }

  // Send check: the spec's non-self sends (self-delivery bypasses the
  // network and produces no events) against what the network observed
  // since the last state change, as multisets.
  std::vector<std::pair<std::string, SiteId>> expected_sends;
  for (const SendSpec& send : t.sends) {
    for (SiteId target : spec_->ResolveGroup(send.to, e.site, n_)) {
      if (target != e.site) expected_sends.emplace_back(send.msg_type, target);
    }
  }
  std::vector<std::pair<std::string, SiteId>> observed = sm.observed_sends;
  std::sort(expected_sends.begin(), expected_sends.end());
  std::sort(observed.begin(), observed.end());
  if (expected_sends != observed) {
    std::ostringstream detail;
    detail << "transition '" << t.Label() << "' sends [";
    for (const auto& [type, to] : expected_sends) {
      detail << ' ' << type << "->" << to;
    }
    detail << " ] but the implementation sent [";
    for (const auto& [type, to] : observed) {
      detail << ' ' << type << "->" << to;
    }
    detail << " ]";
    AddDivergence(ConformanceIssueKind::kSendMismatch, e, detail.str());
  }
  sm.observed_vote.reset();
  sm.observed_sends.clear();

  // Apply the firing to the mirror, exactly as the model's ApplyFiring:
  // consume, advance, record the vote, add every send (self included) to
  // the outstanding multiset.
  for (const auto& [type, from] : predicted->consumed) {
    auto ib = sm.inbox.find({type, from});
    if (ib != sm.inbox.end() && --ib->second == 0) sm.inbox.erase(ib);
    MsgInstance inst{type, from, e.site};
    auto mit = mirror_.messages.find(inst);
    if (mit == mirror_.messages.end()) {
      AddDivergence(ConformanceIssueKind::kUnexplainedTransition, e,
                    "consumed message " + type + " not outstanding");
      Degrade("mirror lost");
      return;
    }
    if (--mit->second == 0) mirror_.messages.erase(mit);
  }
  mirror_.local[i] = t.to;
  ++mirror_.steps[i];
  bool apply_votes = predicted->self_vote ||
                     t.trigger.kind != TriggerKind::kAnyFrom;
  if (apply_votes && (t.votes_yes || t.votes_no)) {
    mirror_.votes[i] = t.votes_yes ? Vote::kYes : Vote::kNo;
    sm.vote_cast = true;
  }
  for (const SendSpec& send : t.sends) {
    for (SiteId target : spec_->ResolveGroup(send.to, e.site, n_)) {
      ++mirror_.messages[MsgInstance{send.msg_type, e.site, target}];
      if (target == e.site) sm.inbox[{send.msg_type, e.site}] += 1;
    }
  }
  if (IsFinal(a.state(t.to).kind) && !sm.decided) {
    sm.decided = true;
    sm.inbox.clear();  // The engine discards buffered input on decision.
  }
  ++firings_;
  CheckMirror(e);
}

void ConformanceChecker::CheckMirror(const TraceEvent& e) {
  auto it = node_index_.find(mirror_.Key());
  if (it == node_index_.end()) {
    AddDivergence(ConformanceIssueKind::kUnknownState, e,
                  "reached global state " + mirror_.ToString(*spec_) +
                      " which is not in the reachable-state graph");
  } else {
    visited_.insert(it->second);
  }

  if (mirror_.IsInconsistent(*spec_)) {
    AddViolation(ConformanceIssueKind::kAtomicityViolation, e.at, e.site,
                 "commit and abort coexist in " + mirror_.ToString(*spec_));
  }
  bool commit_occupied = false;
  for (size_t j = 0; j < n_; ++j) {
    SiteId site = static_cast<SiteId>(j + 1);
    if (RoleOf(site).state(mirror_.local[j]).kind == StateKind::kCommit) {
      commit_occupied = true;
      break;
    }
  }
  if (commit_occupied) {
    for (size_t j = 0; j < n_; ++j) {
      SiteId site = static_cast<SiteId>(j + 1);
      if (!RoleOf(site).CanVote()) continue;  // Implicit assent (e.g. 1PC).
      if (mirror_.votes[j] != Vote::kYes) {
        AddViolation(ConformanceIssueKind::kCommitWithoutYes, e.at, site,
                     "commit state occupied while site " +
                         std::to_string(site) + " has not voted yes");
        break;
      }
    }
  }
}

void ConformanceChecker::Finish(bool expect_decided) {
  if (finished_) return;
  finished_ = true;
  if (degraded_) {
    // The failure-free mirror is gone, but atomicity of the observed
    // outcomes must hold under failures too.
    bool committed = false;
    bool aborted = false;
    for (const SiteMirror& sm : sites_) {
      if (sm.observed_outcome == Outcome::kCommitted) committed = true;
      if (sm.observed_outcome == Outcome::kAborted) aborted = true;
    }
    if (committed && aborted) {
      AddViolation(ConformanceIssueKind::kAtomicityViolation, 0, kNoSite,
                   "sites decided both commit and abort");
    }
    return;
  }
  if (expect_decided) {
    for (size_t i = 0; i < n_; ++i) {
      SiteId site = static_cast<SiteId>(i + 1);
      if (!IsFinal(RoleOf(site).state(mirror_.local[i]).kind)) {
        AddViolation(ConformanceIssueKind::kUndecidedTerminal, 0, site,
                     "run went quiescent with site " + std::to_string(site) +
                         " undecided in " + mirror_.ToString(*spec_));
        break;
      }
    }
  }
}

std::string OrbitKey(const SiteSymmetry& symmetry, const GlobalState& g) {
  size_t n = symmetry.n;
  // Group permutable sites by class.
  std::map<int, std::vector<SiteId>> classes;
  for (size_t i = 0; i < n; ++i) {
    classes[symmetry.classes[i]].push_back(static_cast<SiteId>(i + 1));
  }
  // Odometer over per-class permutations. Each class's member list is
  // permuted independently; the product of all per-class arrangements is
  // the full class-preserving permutation group.
  std::vector<std::vector<SiteId>> originals;
  std::vector<std::vector<SiteId>> current;
  for (auto& [cls, members] : classes) {
    (void)cls;
    originals.push_back(members);
    current.push_back(members);
  }
  std::string best;
  while (true) {
    SitePermutation perm(n);
    for (size_t c = 0; c < originals.size(); ++c) {
      for (size_t k = 0; k < originals[c].size(); ++k) {
        perm[originals[c][k] - 1] = current[c][k];
      }
    }
    std::string key = PermuteGlobalState(g, perm).Key();
    if (best.empty() || key < best) best = key;
    // Advance the odometer.
    size_t c = 0;
    for (; c < current.size(); ++c) {
      if (std::next_permutation(current[c].begin(), current[c].end())) break;
      // Wrapped to sorted order; carry into the next class.
    }
    if (c == current.size()) break;
  }
  return best;
}

}  // namespace nbcp
