#include "analysis/verifier.h"

#include <sstream>

#include "analysis/concurrency_set.h"
#include "analysis/failure_graph.h"
#include "analysis/state_graph.h"

namespace nbcp {

int VerificationReport::ExitCode() const {
  if (!theorem.violations.empty()) return 2;
  if (parametric_ran && parametric.applicable &&
      parametric.HasConcretizedViolation()) {
    return 2;
  }
  if (lint.HasErrors()) return 3;
  if (!conclusive()) return 4;
  if (parametric_ran && !parametric.Conclusive()) return 4;
  return 0;
}

std::string VerificationReport::Render(const ProtocolSpec& spec) const {
  std::ostringstream out;
  out << "protocol: " << protocol << " (" << nbcp::ToString(spec.paradigm())
      << ", n=" << n << ")\n";

  out << "\n== lint ==\n";
  if (lint.findings.empty()) {
    out << "clean\n";
  } else {
    out << lint.ToString();
  }

  out << "\n== state graph ==\n";
  if (!graph_built) {
    out << "unavailable: " << graph_error << "\n";
    return out.str();
  }
  out << "nodes: " << graph_nodes << "  edges: " << graph_edges
      << (graph_reduced ? "  (symmetry-reduced)" : "")
      << (graph_truncated ? "  TRUNCATED" : "") << "\n";
  if (unreduced_nodes != 0) {
    out << "unreduced nodes: " << unreduced_nodes
        << (unreduced_truncated ? " (truncated)" : "");
    if (graph_reduced && graph_nodes != 0) {
      out << "  reduction: "
          << static_cast<double>(unreduced_nodes) /
                 static_cast<double>(graph_nodes)
          << "x";
    }
    out << "\n";
  }

  out << "\n== fundamental nonblocking theorem ==\n" << theorem.ToString();

  out << "\n== resiliency ==\n";
  out << "satisfying sites: " << resiliency.satisfying_sites.size() << " of "
      << resiliency.num_sites << " -> nonblocking under up to "
      << resiliency.max_tolerated_failures() << " failure(s)"
      << (resiliency.truncated ? " (upper bound: graph truncated)" : "")
      << "\n";

  if (failure_graph_built) {
    out << "\n== failure graph ==\n";
    out << "nodes: " << failure_nodes << "  edges: " << failure_edges
        << (failure_truncated ? "  TRUNCATED" : "") << "\n";
    out << "stuck (blocking) nodes: " << stuck_nodes << "\n";
  }

  if (!witnesses.empty()) {
    out << "\n== witnesses ==\n";
    for (const WitnessEntry& entry : witnesses) {
      out << entry.witness.Describe(spec) << "\n";
    }
  }

  if (parametric_ran) {
    out << "\n== parametric (all-n) ==\n" << parametric.ToString(spec);
  }

  out << "\nverdict: ";
  switch (ExitCode()) {
    case 0:
      out << "PASS (nonblocking"
          << (parametric_ran && parametric.nonblocking_all_n ? ", all n >= 2"
                                                             : "")
          << ")\n";
      break;
    case 2:
      if (theorem.violations.empty()) {
        out << "FAIL (parametric violations: " << parametric.violations.size()
            << ")\n";
      } else {
        out << "FAIL (theorem violations: " << theorem.violations.size()
            << ")\n";
      }
      break;
    case 3:
      out << "FAIL (lint errors: " << lint.NumErrors() << ")\n";
      break;
    default:
      out << "INCONCLUSIVE (state graph truncated or unavailable"
          << (parametric_ran && !parametric.Conclusive()
                  ? ", or all-n verdict unsettled"
                  : "")
          << ")\n";
      break;
  }
  return out.str();
}

Result<VerificationReport> VerifyProtocol(const ProtocolSpec& spec,
                                          const std::string& protocol_name,
                                          VerifyOptions options) {
  VerificationReport report;
  report.protocol = protocol_name;
  report.n = options.n;

  GraphOptions graph_options;
  graph_options.max_nodes = options.max_nodes;
  graph_options.symmetry_reduction = options.symmetry_reduction;
  auto graph = ReachableStateGraph::Build(spec, options.n, graph_options);

  // Lint runs even when the graph could not be built (that is its job);
  // share the graph when available so it is built once.
  report.lint =
      LintProtocol(spec, options.n, graph.ok() ? &*graph : nullptr);

  if (!graph.ok()) {
    report.graph_built = false;
    report.graph_error = graph.status().ToString();
    return report;
  }
  report.graph_built = true;
  report.graph_nodes = graph->num_nodes();
  report.graph_edges = graph->num_edges();
  report.graph_reduced = graph->reduced();
  report.graph_truncated = graph->truncated();

  if (options.compare_unreduced && graph->reduced()) {
    GraphOptions unreduced_options = graph_options;
    unreduced_options.symmetry_reduction = false;
    auto unreduced =
        ReachableStateGraph::Build(spec, options.n, unreduced_options);
    if (unreduced.ok()) {
      report.unreduced_nodes = unreduced->num_nodes();
      report.unreduced_truncated = unreduced->truncated();
    }
  }

  auto analysis = ConcurrencyAnalysis::Compute(*graph);
  report.theorem = CheckNonblocking(analysis);
  report.resiliency.num_sites = options.n;
  report.resiliency.satisfying_sites = report.theorem.satisfying_sites;
  report.resiliency.truncated = report.theorem.truncated;

  if (options.witnesses) {
    size_t extracted = 0;
    for (const Violation& violation : report.theorem.violations) {
      if (extracted >= options.max_witnesses) break;
      auto witness = ExtractViolationWitness(*graph, violation);
      if (!witness.ok()) continue;  // e.g. commit side unreachable for C1
      WitnessEntry entry;
      entry.witness = std::move(*witness);
      entry.trace_jsonl = WitnessTraceJsonl(spec, entry.witness,
                                            protocol_name);
      report.witnesses.push_back(std::move(entry));
      ++extracted;
    }
  }

  if (options.with_failure_graph) {
    FailureGraphOptions failure_options;
    failure_options.max_nodes = options.failure_max_nodes;
    failure_options.max_failures = options.max_failures;
    failure_options.symmetry_reduction = options.symmetry_reduction;
    failure_options.record_edges = options.witnesses;
    auto failure_graph =
        FailureAugmentedGraph::Build(spec, options.n, failure_options);
    if (failure_graph.ok()) {
      report.failure_graph_built = true;
      report.failure_nodes = failure_graph->num_nodes();
      report.failure_edges = failure_graph->num_edges();
      report.failure_truncated = failure_graph->truncated();
      report.stuck_nodes = failure_graph->StuckNodes().size();
      if (options.witnesses && !report.theorem.violations.empty()) {
        auto blocking =
            ExtractBlockingWitness(*failure_graph, report.theorem.violations);
        if (blocking.ok()) {
          WitnessEntry entry;
          entry.witness = std::move(*blocking);
          entry.trace_jsonl = WitnessTraceJsonl(spec, entry.witness,
                                                protocol_name);
          report.witnesses.push_back(std::move(entry));
        }
      }
    }
  }

  if (options.parametric) {
    ParamOptions param_options = options.param;
    param_options.witnesses = options.witnesses;
    auto parametric =
        RunParametricAnalysis(spec, protocol_name, param_options);
    if (!parametric.ok()) return parametric.status();
    report.parametric = std::move(*parametric);
    report.parametric_ran = true;
  }

  return report;
}

namespace {

Json LintToJson(const LintReport& lint) {
  Json j = Json::Object();
  j["errors"] = static_cast<uint64_t>(lint.NumErrors());
  j["warnings"] = static_cast<uint64_t>(lint.NumWarnings());
  Json findings = Json::Array();
  for (const LintFinding& f : lint.findings) {
    Json item = Json::Object();
    item["severity"] = ToString(f.severity);
    item["code"] = f.code;
    item["role"] = static_cast<int64_t>(f.role);
    item["message"] = f.message;
    findings.Append(std::move(item));
  }
  j["findings"] = std::move(findings);
  return j;
}

Json TheoremToJson(const NonblockingReport& theorem) {
  Json j = Json::Object();
  j["nonblocking"] = theorem.nonblocking;
  j["truncated"] = theorem.truncated;
  Json violations = Json::Array();
  for (const Violation& v : theorem.violations) {
    Json item = Json::Object();
    item["site"] = static_cast<uint64_t>(v.site);
    item["state"] = v.state_name;
    item["condition"] =
        v.kind == ViolationKind::kAbortAndCommitInConcurrencySet ? "C1" : "C2";
    item["concurrency_set"] = v.concurrency_set;
    violations.Append(std::move(item));
  }
  j["violations"] = std::move(violations);
  Json sites = Json::Array();
  for (SiteId site : theorem.satisfying_sites) {
    sites.Append(static_cast<uint64_t>(site));
  }
  j["satisfying_sites"] = std::move(sites);
  return j;
}

Json ParametricToJson(const ParametricReport& parametric) {
  Json j = Json::Object();
  j["applicable"] = parametric.applicable;
  if (!parametric.applicable) {
    j["not_applicable_reason"] = parametric.not_applicable_reason;
  }
  j["built"] = parametric.built;
  j["abstract_nodes"] = static_cast<uint64_t>(parametric.abstract_nodes);
  j["abstract_edges"] = static_cast<uint64_t>(parametric.abstract_edges);
  j["truncated"] = parametric.truncated;
  j["saturated"] = parametric.saturated;
  j["nonblocking_all_n"] = parametric.nonblocking_all_n;
  j["conclusive"] = parametric.Conclusive();
  j["cutoff_n"] = static_cast<uint64_t>(parametric.cutoff_n);
  j["checked_max_n"] = static_cast<uint64_t>(parametric.checked_max_n);
  j["facts_total"] = static_cast<uint64_t>(parametric.facts_total);
  j["residue_facts"] = static_cast<uint64_t>(parametric.residue_facts);
  j["certificate"] = parametric.certificate;
  Json violations = Json::Array();
  for (const ParamViolation& v : parametric.violations) {
    Json item = Json::Object();
    item["role"] = static_cast<int64_t>(v.role);
    item["state"] = v.state_name;
    item["condition"] =
        v.kind == ViolationKind::kAbortAndCommitInConcurrencySet ? "C1" : "C2";
    item["concurrency_set"] = v.concurrency_set;
    item["concretized"] = v.concretized;
    item["concrete_n"] = static_cast<uint64_t>(v.concrete_n);
    violations.Append(std::move(item));
  }
  j["violations"] = std::move(violations);
  Json witnesses = Json::Array();
  for (const ParamWitnessEntry& entry : parametric.witnesses) {
    Json item = Json::Object();
    item["violation"] = entry.witness.violation;
    item["state"] = entry.witness.state_name;
    item["n"] = static_cast<uint64_t>(entry.n);
    item["steps"] = static_cast<uint64_t>(entry.witness.steps.size());
    item["has_trace"] = !entry.trace_jsonl.empty();
    item["has_schedule"] = !entry.schedule_jsonl.empty();
    witnesses.Append(std::move(item));
  }
  j["witnesses"] = std::move(witnesses);
  return j;
}

}  // namespace

Json VerificationReportToJson(const VerificationReport& report) {
  Json j = Json::Object();
  j["protocol"] = report.protocol;
  j["n"] = static_cast<uint64_t>(report.n);
  j["exit_code"] = report.ExitCode();
  j["conclusive"] = report.conclusive();

  j["lint"] = LintToJson(report.lint);

  Json graph = Json::Object();
  graph["built"] = report.graph_built;
  if (!report.graph_built) graph["error"] = report.graph_error;
  graph["nodes"] = static_cast<uint64_t>(report.graph_nodes);
  graph["edges"] = static_cast<uint64_t>(report.graph_edges);
  graph["reduced"] = report.graph_reduced;
  graph["truncated"] = report.graph_truncated;
  graph["unreduced_nodes"] = static_cast<uint64_t>(report.unreduced_nodes);
  if (report.unreduced_nodes != 0 && report.graph_nodes != 0) {
    graph["reduction_factor"] = static_cast<double>(report.unreduced_nodes) /
                                static_cast<double>(report.graph_nodes);
  }
  j["graph"] = std::move(graph);

  j["theorem"] = TheoremToJson(report.theorem);

  Json resiliency = Json::Object();
  resiliency["satisfying_sites"] =
      static_cast<uint64_t>(report.resiliency.satisfying_sites.size());
  resiliency["max_tolerated_failures"] =
      static_cast<uint64_t>(report.resiliency.max_tolerated_failures());
  resiliency["truncated"] = report.resiliency.truncated;
  j["resiliency"] = std::move(resiliency);

  Json failure = Json::Object();
  failure["built"] = report.failure_graph_built;
  failure["nodes"] = static_cast<uint64_t>(report.failure_nodes);
  failure["edges"] = static_cast<uint64_t>(report.failure_edges);
  failure["truncated"] = report.failure_truncated;
  failure["stuck_nodes"] = static_cast<uint64_t>(report.stuck_nodes);
  j["failure_graph"] = std::move(failure);

  Json witnesses = Json::Array();
  for (const WitnessEntry& entry : report.witnesses) {
    Json item = Json::Object();
    item["violation"] = entry.witness.violation;
    item["site"] = static_cast<uint64_t>(entry.witness.site);
    item["state"] = entry.witness.state_name;
    item["steps"] = static_cast<uint64_t>(entry.witness.steps.size());
    item["has_trace"] = !entry.trace_jsonl.empty();
    witnesses.Append(std::move(item));
  }
  j["witnesses"] = std::move(witnesses);

  if (report.parametric_ran) {
    j["parametric"] = ParametricToJson(report.parametric);
  }

  return j;
}

}  // namespace nbcp
