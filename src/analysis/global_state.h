#ifndef NBCP_ANALYSIS_GLOBAL_STATE_H_
#define NBCP_ANALYSIS_GLOBAL_STATE_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/types.h"
#include "fsa/protocol_spec.h"

namespace nbcp {

/// One message instance outstanding in the network, identified by type and
/// endpoints (the model needs no payloads).
struct MsgInstance {
  std::string type;
  SiteId from = kNoSite;
  SiteId to = kNoSite;

  friend bool operator<(const MsgInstance& a, const MsgInstance& b) {
    return std::tie(a.type, a.from, a.to) < std::tie(b.type, b.from, b.to);
  }
  friend bool operator==(const MsgInstance& a, const MsgInstance& b) {
    return a.type == b.type && a.from == b.from && a.to == b.to;
  }
};

/// Vote cast by a site so far.
enum class Vote : uint8_t { kUnset = 0, kYes = 1, kNo = 2 };

/// The global state of a distributed transaction, per the paper: "a global
/// state vector containing the local states of all FSAs, and the outstanding
/// messages in the network".
///
/// Two refinements are tracked on top of the paper's definition:
///  * `votes`  — whether each site has cast a yes/no vote, needed to decide
///    committability ("occupancy implies all sites have voted yes");
///  * `steps`  — transitions taken per site, needed to verify synchronicity
///    within one state transition.
/// Both refine (split) the paper's states without changing the reachable
/// projection onto (local states, messages).
struct GlobalState {
  std::vector<StateIndex> local;          ///< local[i] = state of site i+1.
  std::vector<Vote> votes;                ///< votes[i] = vote of site i+1.
  std::vector<uint16_t> steps;            ///< steps[i] = transitions fired.
  std::map<MsgInstance, uint16_t> messages;  ///< multiset of in-flight msgs.

  /// Canonical serialization usable as a hash key.
  std::string Key() const;

  /// Projection key ignoring votes and steps — the paper's notion of a
  /// global state.
  std::string ProjectedKey() const;

  /// True if some site occupies a commit state while another occupies an
  /// abort state ("inconsistent": atomicity is violated).
  bool IsInconsistent(const ProtocolSpec& spec) const;

  /// True if every site's local state is final.
  bool IsFinal(const ProtocolSpec& spec) const;

  /// Human-readable rendering, e.g. "<w1,w,q | yes(2->1)>".
  std::string ToString(const ProtocolSpec& spec) const;
};

/// The initial global state for an n-site run of `spec`: every site in its
/// role's initial state, with the client's virtual "__request" message(s)
/// outstanding (to site 1 in the central-site paradigm; to every site in the
/// decentralized paradigm).
GlobalState MakeInitialGlobalState(const ProtocolSpec& spec, size_t n);

}  // namespace nbcp

#endif  // NBCP_ANALYSIS_GLOBAL_STATE_H_
