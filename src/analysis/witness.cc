#include "analysis/witness.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "analysis/concurrency_set.h"
#include "obs/export.h"
#include "obs/observer.h"
#include "protocols/protocols.h"
#include "trace/trace.h"

namespace nbcp {

namespace {

/// Remaps a message instance's endpoints through `perm`.
MsgInstance PermuteMsg(const SitePermutation& perm, const MsgInstance& m) {
  return MsgInstance{m.type, ApplySitePermutation(perm, m.from),
                     ApplySitePermutation(perm, m.to)};
}

/// The ordered send expansion of `transition` fired by `site`.
std::vector<MsgInstance> SendExpansion(const ProtocolSpec& spec, size_t n,
                                       SiteId site, const Transition& t) {
  std::vector<MsgInstance> out;
  for (const SendSpec& send : t.sends) {
    for (SiteId target : spec.ResolveGroup(send.to, site, n)) {
      out.push_back(MsgInstance{send.msg_type, site, target});
    }
  }
  return out;
}

/// Erases messages addressed to down sites, returning what was removed
/// (each instance repeated by its multiplicity).
std::vector<MsgInstance> DropToDown(GlobalState* g,
                                    const std::vector<bool>& down) {
  std::vector<MsgInstance> dropped;
  for (auto it = g->messages.begin(); it != g->messages.end();) {
    if (it->first.to != kNoSite && down[it->first.to - 1]) {
      for (uint16_t c = 0; c < it->second; ++c) dropped.push_back(it->first);
      it = g->messages.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

/// BFS shortest path (as a forward edge-index sequence) from node 0 to the
/// first node satisfying `target`, over `edges_of(node)` many edges whose
/// successor is `to_of(node, k)`. Returns the target node via `found`, or
/// false when unreachable.
template <typename NumEdgesFn, typename ToFn>
bool BfsPath(size_t num_nodes, NumEdgesFn num_edges_of, ToFn to_of,
             const std::function<bool(size_t)>& target, size_t* found,
             std::vector<std::pair<size_t, size_t>>* path) {
  constexpr size_t kUnseen = SIZE_MAX;
  std::vector<std::pair<size_t, size_t>> parent(num_nodes,
                                                {kUnseen, kUnseen});
  std::vector<bool> seen(num_nodes, false);
  std::deque<size_t> queue;
  seen[0] = true;
  queue.push_back(0);
  size_t hit = kUnseen;
  if (target(0)) hit = 0;
  while (hit == kUnseen && !queue.empty()) {
    size_t node = queue.front();
    queue.pop_front();
    size_t degree = num_edges_of(node);
    for (size_t k = 0; k < degree && hit == kUnseen; ++k) {
      size_t to = to_of(node, k);
      if (seen[to]) continue;
      seen[to] = true;
      parent[to] = {node, k};
      if (target(to)) hit = to;
      queue.push_back(to);
    }
  }
  if (hit == kUnseen) return false;
  *found = hit;
  path->clear();
  for (size_t node = hit; parent[node].first != kUnseen;
       node = parent[node].first) {
    path->push_back(parent[node]);
  }
  std::reverse(path->begin(), path->end());
  return true;
}

}  // namespace

Result<Witness> ExtractViolationWitness(const ReachableStateGraph& graph,
                                        const Violation& violation) {
  const ProtocolSpec& spec = graph.spec();
  size_t n = graph.num_sites();
  RoleIndex role = spec.RoleForSite(violation.site, n);

  // Target: a site of the violating role occupies the flagged state while
  // another site occupies a commit state.
  auto target = [&](size_t idx) {
    const GlobalState& g = graph.node(idx);
    for (size_t i = 0; i < n; ++i) {
      SiteId site = static_cast<SiteId>(i + 1);
      if (spec.RoleForSite(site, n) != role) continue;
      if (g.local[i] != violation.state) continue;
      for (size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        if (graph.KindOf(static_cast<SiteId>(j + 1), g.local[j]) ==
            StateKind::kCommit) {
          return true;
        }
      }
    }
    return false;
  };

  size_t found = 0;
  std::vector<std::pair<size_t, size_t>> path;
  if (!BfsPath(
          graph.num_nodes(), [&](size_t i) { return graph.edges(i).size(); },
          [&](size_t i, size_t k) { return graph.edges(i)[k].to; }, target,
          &found, &path)) {
    return Status::NotFound(
        "no reachable state realizes the violating co-occupancy");
  }

  Witness w;
  w.violation =
      violation.kind == ViolationKind::kAbortAndCommitInConcurrencySet ? "C1"
                                                                       : "C2";
  w.state = violation.state;
  w.state_name = violation.state_name;
  w.num_sites = n;

  // Concretize: sigma maps concrete site coordinates onto representative
  // coordinates (representative == Permute(concrete, sigma)); each edge's
  // canonicalization permutation composes on the left.
  SitePermutation sigma = IdentityPermutation(n);
  GlobalState concrete = graph.node(0);
  for (const auto& [from, k] : path) {
    const GraphEdge& e = graph.edges(from)[k];
    const GlobalState& rep = graph.node(from);
    bool matched = false;
    for (const Firing& f : EnumerateFirings(spec, n, rep, e.site)) {
      if (f.transition != e.transition || f.self_vote != e.self_vote) continue;
      GlobalState raw = ApplyFiring(spec, n, rep, e.site, f);
      SitePermutation p = IdentityPermutation(n);
      if (graph.reduced()) {
        p = CanonicalPermutation(graph.symmetry(), raw, nullptr);
        raw = PermuteGlobalState(raw, p);
      }
      if (raw.Key() != graph.node(e.to).Key()) continue;

      SitePermutation inv = InvertPermutation(sigma);
      WitnessStep step;
      step.kind = WitnessStep::Kind::kFire;
      step.site = ApplySitePermutation(inv, e.site);
      step.transition = f.transition;
      step.self_vote = f.self_vote;
      for (const MsgInstance& m : f.consumed) {
        step.consumed.push_back(PermuteMsg(inv, m));
      }
      Firing cf{f.transition, step.consumed, f.self_vote};
      concrete = ApplyFiring(spec, n, concrete, step.site, cf);
      const Automaton& a = spec.role(spec.RoleForSite(step.site, n));
      step.sent = SendExpansion(spec, n, step.site,
                                a.transitions()[f.transition]);
      step.after = concrete;
      sigma = ComposePermutations(p, sigma);
      if (PermuteGlobalState(concrete, sigma).Key() !=
          graph.node(e.to).Key()) {
        return Status::Internal("witness concretization diverged");
      }
      w.steps.push_back(std::move(step));
      matched = true;
      break;
    }
    if (!matched) {
      return Status::Internal("witness edge has no matching firing");
    }
  }

  // Locate the concrete violating site in the final state.
  SitePermutation inv = InvertPermutation(sigma);
  const GlobalState& final_rep =
      path.empty() ? graph.node(0) : graph.node(graph.edges(path.back().first)
                                                    [path.back().second].to);
  for (size_t i = 0; i < n; ++i) {
    SiteId site = static_cast<SiteId>(i + 1);
    if (spec.RoleForSite(site, n) != role) continue;
    if (final_rep.local[i] != violation.state) continue;
    w.site = ApplySitePermutation(inv, site);
    break;
  }
  return w;
}

Result<Witness> ExtractBlockingWitness(
    const FailureAugmentedGraph& graph,
    const std::vector<Violation>& violations) {
  if (!graph.options().record_edges) {
    return Status::InvalidArgument(
        "failure graph built without record_edges; no path extraction");
  }
  const ProtocolSpec& spec = graph.spec();
  size_t n = graph.num_sites();

  std::set<std::pair<RoleIndex, StateIndex>> violating;
  for (const Violation& v : violations) {
    violating.insert({spec.RoleForSite(v.site, n), v.state});
  }
  if (violating.empty()) {
    return Status::NotFound("no statically violating states to search for");
  }

  std::vector<size_t> stuck = graph.StuckNodes();
  std::set<size_t> stuck_set(stuck.begin(), stuck.end());
  auto target = [&](size_t idx) {
    if (stuck_set.count(idx) == 0) return false;
    const FailureGlobalState& g = graph.node(idx);
    for (size_t i = 0; i < n; ++i) {
      if (g.down[i]) continue;
      SiteId site = static_cast<SiteId>(i + 1);
      if (violating.count({spec.RoleForSite(site, n), g.base.local[i]}) != 0) {
        return true;
      }
    }
    return false;
  };

  size_t found = 0;
  std::vector<std::pair<size_t, size_t>> path;
  if (!BfsPath(
          graph.num_nodes(), [&](size_t i) { return graph.edges(i).size(); },
          [&](size_t i, size_t k) { return graph.edges(i)[k].to; }, target,
          &found, &path)) {
    return Status::NotFound("no blocking scenario reachable");
  }

  Witness w;
  w.violation = "blocking";
  w.num_sites = n;

  SitePermutation sigma = IdentityPermutation(n);
  FailureGlobalState concrete = graph.node(0);
  for (const auto& [from, k] : path) {
    const FailureEdge& e = graph.edges(from)[k];
    const FailureGlobalState& rep = graph.node(from);
    SitePermutation inv = InvertPermutation(sigma);
    WitnessStep step;
    step.site = ApplySitePermutation(inv, e.site);

    // Reproduce the edge in representative coordinates to recover its
    // consumed messages and canonicalization permutation.
    auto canonicalize = [&](FailureGlobalState raw) {
      SitePermutation p = IdentityPermutation(n);
      if (graph.reduced()) {
        p = CanonicalPermutation(graph.symmetry(), raw.base, &raw.down);
        FailureGlobalState c;
        c.base = PermuteGlobalState(raw.base, p);
        c.down.resize(n);
        for (size_t i = 0; i < n; ++i) c.down[p[i] - 1] = raw.down[i];
        raw = std::move(c);
      }
      return std::make_pair(std::move(raw), std::move(p));
    };

    bool matched = false;
    if (e.kind == FailureEdge::Kind::kCrash) {
      FailureGlobalState raw = rep;
      raw.down[e.site - 1] = true;
      DropToDown(&raw.base, raw.down);
      auto [canon, p] = canonicalize(std::move(raw));
      if (canon.Key() != graph.node(e.to).Key()) {
        return Status::Internal("witness crash edge diverged");
      }
      step.kind = WitnessStep::Kind::kCrash;
      concrete.down[step.site - 1] = true;
      step.dropped = DropToDown(&concrete.base, concrete.down);
      step.after = concrete.base;
      step.down_after = concrete.down;
      sigma = ComposePermutations(p, sigma);
      matched = true;
    } else {
      bool partial = e.kind == FailureEdge::Kind::kPartialCrash;
      for (const Firing& f : EnumerateFirings(spec, n, rep.base, e.site)) {
        if (f.transition != e.transition || f.self_vote != e.self_vote) {
          continue;
        }
        FailureGlobalState raw;
        raw.base = ApplyFiring(spec, n, rep.base, e.site, f,
                               partial ? e.send_prefix : SIZE_MAX,
                               /*advance_state=*/!partial);
        raw.down = rep.down;
        if (partial) raw.down[e.site - 1] = true;
        DropToDown(&raw.base, raw.down);
        auto [canon, p] = canonicalize(std::move(raw));
        if (canon.Key() != graph.node(e.to).Key()) continue;

        step.kind = partial ? WitnessStep::Kind::kPartialCrash
                            : WitnessStep::Kind::kFire;
        step.transition = f.transition;
        step.self_vote = f.self_vote;
        step.send_prefix = e.send_prefix;
        for (const MsgInstance& m : f.consumed) {
          step.consumed.push_back(PermuteMsg(inv, m));
        }
        // The representative's send prefix maps to a concrete message
        // subset (not necessarily a prefix of the concrete target order);
        // apply it explicitly.
        const Automaton& a = spec.role(spec.RoleForSite(e.site, n));
        std::vector<MsgInstance> rep_sends =
            SendExpansion(spec, n, e.site, a.transitions()[f.transition]);
        if (partial) rep_sends.resize(e.send_prefix);
        for (const MsgInstance& m : rep_sends) {
          step.sent.push_back(PermuteMsg(inv, m));
        }
        Firing cf{f.transition, step.consumed, f.self_vote};
        concrete.base =
            ApplyFiring(spec, n, concrete.base, step.site, cf,
                        /*send_limit=*/0, /*advance_state=*/!partial);
        for (const MsgInstance& m : step.sent) {
          ++concrete.base.messages[m];
        }
        if (partial) concrete.down[step.site - 1] = true;
        step.dropped = DropToDown(&concrete.base, concrete.down);
        // Messages the sender addressed to already-down sites never entered
        // the network: move them from `sent` to implicit drops.
        step.after = concrete.base;
        step.down_after = concrete.down;
        sigma = ComposePermutations(p, sigma);
        matched = true;
        break;
      }
      if (matched) {
        FailureGlobalState check;
        check.base = PermuteGlobalState(concrete.base, sigma);
        check.down.resize(n);
        for (size_t i = 0; i < n; ++i) {
          check.down[sigma[i] - 1] = concrete.down[i];
        }
        if (check.Key() != graph.node(e.to).Key()) {
          return Status::Internal("witness concretization diverged");
        }
      }
    }
    if (!matched) {
      return Status::Internal("witness edge has no matching firing");
    }
    w.steps.push_back(std::move(step));
  }

  // The flagged survivor in the final state, in concrete coordinates.
  SitePermutation inv = InvertPermutation(sigma);
  const FailureGlobalState& final_rep = graph.node(found);
  for (size_t i = 0; i < n; ++i) {
    if (final_rep.down[i]) continue;
    SiteId site = static_cast<SiteId>(i + 1);
    RoleIndex role = spec.RoleForSite(site, n);
    if (violating.count({role, final_rep.base.local[i]}) != 0) {
      w.site = ApplySitePermutation(inv, site);
      w.state = final_rep.base.local[i];
      w.state_name = spec.role(role).state(w.state).name;
      break;
    }
  }
  return w;
}

std::string Witness::Describe(const ProtocolSpec& spec) const {
  std::ostringstream out;
  out << violation << " witness (" << steps.size() << " step(s)): site "
      << site << " in '" << state_name << "'\n";
  for (size_t i = 0; i < steps.size(); ++i) {
    const WitnessStep& s = steps[i];
    out << "  " << (i + 1) << ". site " << s.site << ' ';
    if (s.kind == WitnessStep::Kind::kCrash) {
      out << "crashes";
    } else {
      const Automaton& a =
          spec.role(spec.RoleForSite(s.site, num_sites));
      const Transition& t = a.transitions()[s.transition];
      out << (s.kind == WitnessStep::Kind::kPartialCrash
                  ? "crashes mid-transition "
                  : "fires ")
          << a.state(t.from).name << "->" << a.state(t.to).name;
      if (!s.consumed.empty()) {
        out << " consuming";
        for (const MsgInstance& m : s.consumed) {
          out << ' ' << m.type << '<' << '-'
              << (m.from == kNoSite ? std::string("client")
                                    : std::to_string(m.from));
        }
      }
      if (s.self_vote) out << " (spontaneous no-vote)";
      if (!s.sent.empty()) {
        out << " sending";
        for (const MsgInstance& m : s.sent) {
          out << ' ' << m.type << "->" << m.to;
        }
      }
    }
    if (!s.dropped.empty()) {
      out << " dropping " << s.dropped.size() << " in-flight message(s)";
    }
    out << '\n';
  }
  return out.str();
}

std::string WitnessTraceJsonl(const ProtocolSpec& spec, const Witness& witness,
                              const std::string& protocol_name) {
  size_t n = witness.num_sites;
  TraceRecorder recorder;

  // Wire a recorder + observer pair exactly like the runtime: the observer
  // taps every recorded event and writes its global-state timeline (and any
  // violations) back into the recorder, so the exported trace is
  // indistinguishable in shape from a live run and `nbcp-trace replay`
  // recomputes a byte-identical timeline.
  size_t analysis_n = std::min<size_t>(n, 3);
  auto analysis_graph = ReachableStateGraph::Build(spec, analysis_n);
  std::optional<ConcurrencyAnalysis> analysis;
  std::optional<GlobalStateObserver> observer;
  if (analysis_graph.ok()) {
    analysis = ConcurrencyAnalysis::Compute(*analysis_graph);
    ObserverConfig config;
    config.policy = ObserverPolicy::kCount;
    observer.emplace(&spec, n, &*analysis,
                     MakeAnalysisSiteMap(spec.paradigm(), n, analysis_n),
                     config);
    observer->set_trace(&recorder);
    recorder.set_sink([&](const TraceEvent& e) { observer->OnEvent(e); });
  }

  SimTime t = 0;
  const TransactionId txn = 1;
  uint64_t next_seq = 1;
  // FIFO of outstanding sequence numbers per in-flight message instance.
  std::map<std::tuple<std::string, SiteId, SiteId>, std::deque<uint64_t>>
      pending;

  GlobalState previous = MakeInitialGlobalState(spec, n);
  for (const WitnessStep& s : witness.steps) {
    // Deliveries (or the client request) that trigger the firing.
    for (const MsgInstance& m : s.consumed) {
      if (m.from == kNoSite && m.type == msg::kRequest) {
        recorder.Record(t++, s.site, txn, TraceEventType::kProtocolStart);
        continue;
      }
      auto& fifo = pending[{m.type, m.from, m.to}];
      uint64_t seq = fifo.empty() ? 0 : fifo.front();
      if (!fifo.empty()) fifo.pop_front();
      recorder.Record(t++, s.site, txn, TraceEventType::kMessageDelivered,
                      m.type + "<-" + std::to_string(m.from), seq);
    }

    if (s.kind != WitnessStep::Kind::kCrash) {
      // Vote, if this firing cast one.
      size_t i = s.site - 1;
      if (s.after.votes[i] != previous.votes[i]) {
        recorder.Record(t++, s.site, txn, TraceEventType::kVoteCast,
                        s.after.votes[i] == Vote::kYes ? "yes" : "no");
      }
      for (const MsgInstance& m : s.sent) {
        uint64_t seq = next_seq++;
        pending[{m.type, m.from, m.to}].push_back(seq);
        recorder.Record(t++, s.site, txn, TraceEventType::kMessageSent,
                        m.type + "->" + std::to_string(m.to), seq);
      }
      if (s.kind == WitnessStep::Kind::kFire) {
        const Automaton& a = spec.role(spec.RoleForSite(s.site, n));
        const LocalState& state = a.state(s.after.local[i]);
        recorder.Record(t++, s.site, txn, TraceEventType::kStateChange,
                        state.name);
        if (state.kind == StateKind::kCommit) {
          recorder.Record(t++, s.site, txn, TraceEventType::kDecision,
                          ToString(Outcome::kCommitted));
        } else if (state.kind == StateKind::kAbort) {
          recorder.Record(t++, s.site, txn, TraceEventType::kDecision,
                          ToString(Outcome::kAborted));
        }
      }
    }

    if (s.kind != WitnessStep::Kind::kFire) {
      recorder.Record(t++, s.site, txn, TraceEventType::kCrash);
    }
    for (const MsgInstance& m : s.dropped) {
      auto& fifo = pending[{m.type, m.from, m.to}];
      uint64_t seq = fifo.empty() ? 0 : fifo.front();
      if (!fifo.empty()) fifo.pop_front();
      recorder.Record(t++, m.to, txn, TraceEventType::kMessageDropped,
                      m.type + "<-" + std::to_string(m.from), seq);
    }
    previous = s.after;
  }

  TraceMeta meta;
  meta.protocol = protocol_name;
  meta.num_sites = n;
  meta.dropped = 0;
  return ExportTraceJsonLines(recorder, /*spans=*/nullptr, meta);
}

}  // namespace nbcp
