#include "analysis/failure_graph.h"

#include <sstream>
#include <utility>

#include "protocols/protocols.h"

namespace nbcp {

std::string FailureGlobalState::Key() const {
  std::string key = base.Key();
  key += '#';
  for (bool d : down) key += d ? '1' : '0';
  return key;
}

size_t FailureGlobalState::NumDown() const {
  size_t count = 0;
  for (bool d : down) count += d ? 1 : 0;
  return count;
}

Result<FailureAugmentedGraph> FailureAugmentedGraph::Build(
    const ProtocolSpec& spec, size_t n, FailureGraphOptions options) {
  if (n < 2) return Status::InvalidArgument("need at least 2 sites");
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;
  if (options.max_failures >= n) options.max_failures = n - 1;

  FailureAugmentedGraph graph(spec, n, options);
  graph.symmetry_ = ComputeSiteSymmetry(graph.spec_, n);
  graph.InternPermutation(IdentityPermutation(n));  // pool index 0

  FailureGlobalState initial;
  initial.base = MakeInitialGlobalState(spec, n);
  initial.down.assign(n, false);

  std::vector<size_t> worklist;
  uint32_t perm = 0;
  graph.Intern(std::move(initial), &worklist, &perm);
  size_t cursor = 0;
  while (cursor < worklist.size()) {
    if (graph.nodes_.size() > options.max_nodes) {
      graph.complete_ = false;
      break;
    }
    graph.Expand(worklist[cursor++], &worklist);
  }
  return graph;
}

uint32_t FailureAugmentedGraph::InternPermutation(const SitePermutation& perm) {
  std::ostringstream key;
  for (SiteId s : perm) key << s << ',';
  auto [it, inserted] =
      perm_index_.emplace(key.str(), static_cast<uint32_t>(perm_pool_.size()));
  if (inserted) perm_pool_.push_back(perm);
  return it->second;
}

size_t FailureAugmentedGraph::Intern(FailureGlobalState state,
                                     std::vector<size_t>* worklist,
                                     uint32_t* perm_out) {
  *perm_out = 0;
  if (reduced()) {
    SitePermutation perm =
        CanonicalPermutation(symmetry_, state.base, &state.down);
    if (perm != perm_pool_[0]) {
      FailureGlobalState canonical;
      canonical.base = PermuteGlobalState(state.base, perm);
      canonical.down.resize(n_);
      for (size_t i = 0; i < n_; ++i) canonical.down[perm[i] - 1] = state.down[i];
      state = std::move(canonical);
      *perm_out = InternPermutation(perm);
    }
  }
  std::string key = state.Key();
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  size_t idx = nodes_.size();
  nodes_.push_back(std::move(state));
  if (options_.record_edges) edges_.emplace_back();
  index_.emplace(std::move(key), idx);
  worklist->push_back(idx);
  return idx;
}

void FailureAugmentedGraph::AddEdge(size_t from, FailureEdge edge) {
  if (options_.record_edges) edges_[from].push_back(std::move(edge));
  ++num_edges_;
}

void FailureAugmentedGraph::DropMessagesToDownSites(
    FailureGlobalState* state) const {
  for (auto it = state->base.messages.begin();
       it != state->base.messages.end();) {
    if (it->first.to != kNoSite && state->down[it->first.to - 1]) {
      it = state->base.messages.erase(it);
    } else {
      ++it;
    }
  }
}

void FailureAugmentedGraph::Expand(size_t idx,
                                   std::vector<size_t>* worklist) {
  const FailureGlobalState base = nodes_[idx];
  size_t failures = base.NumDown();

  for (size_t i = 0; i < n_; ++i) {
    if (base.down[i]) continue;  // Crashed sites fire nothing.
    SiteId site = static_cast<SiteId>(i + 1);
    // The state invariant guarantees no message is addressed to a down
    // site, so the failure-free firing rules apply unchanged to survivors.
    std::vector<Firing> firings = EnumerateFirings(spec_, n_, base.base, site);

    // Normal (atomic) firings. Sends to crashed targets vanish.
    for (const Firing& f : firings) {
      FailureGlobalState next;
      next.base = ApplyFiring(spec_, n_, base.base, site, f);
      next.down = base.down;
      DropMessagesToDownSites(&next);
      uint32_t perm = 0;
      size_t to = Intern(std::move(next), worklist, &perm);
      AddEdge(idx, FailureEdge{to, FailureEdge::Kind::kFire, site,
                               f.transition, f.self_vote, 0, perm});
    }

    if (failures >= options_.max_failures) continue;

    // Clean crash between transitions: the site stops; in-flight messages
    // addressed to it will never be consumed (drop them to keep states
    // canonical).
    {
      FailureGlobalState next = base;
      next.down[i] = true;
      DropMessagesToDownSites(&next);
      uint32_t perm = 0;
      size_t to = Intern(std::move(next), worklist, &perm);
      AddEdge(idx, FailureEdge{to, FailureEdge::Kind::kCrash, site, 0, false,
                               0, perm});
    }

    // Partial-send crashes inside each enabled transition: the trigger is
    // consumed, only a strict prefix of the messages escapes, the local
    // state does not advance, and the site is down.
    if (options_.partial_sends) {
      for (const Firing& f : firings) {
        const Automaton& automaton =
            spec_.role(spec_.RoleForSite(site, n_));
        const Transition& t = automaton.transitions()[f.transition];
        size_t total_sends = 0;
        for (const SendSpec& send : t.sends) {
          total_sends += spec_.ResolveGroup(send.to, site, n_).size();
        }
        for (size_t prefix = 0; prefix < total_sends; ++prefix) {
          FailureGlobalState next;
          next.base = ApplyFiring(spec_, n_, base.base, site, f, prefix,
                                  /*advance_state=*/false);
          next.down = base.down;
          next.down[i] = true;
          DropMessagesToDownSites(&next);
          uint32_t perm = 0;
          size_t to = Intern(std::move(next), worklist, &perm);
          AddEdge(idx, FailureEdge{to, FailureEdge::Kind::kPartialCrash, site,
                                   f.transition, f.self_vote, prefix, perm});
        }
      }
    }
  }
}

std::vector<size_t> FailureAugmentedGraph::InconsistentNodes() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].base.IsInconsistent(spec_)) out.push_back(i);
  }
  return out;
}

std::vector<size_t> FailureAugmentedGraph::StuckNodes() const {
  std::vector<size_t> out;
  for (size_t idx = 0; idx < nodes_.size(); ++idx) {
    const FailureGlobalState& g = nodes_[idx];
    bool any_enabled = false;
    bool any_unfinished = false;
    for (size_t i = 0; i < n_; ++i) {
      if (g.down[i]) continue;
      SiteId site = static_cast<SiteId>(i + 1);
      if (!EnumerateFirings(spec_, n_, g.base, site).empty()) {
        any_enabled = true;
        break;
      }
      if (!IsFinal(KindOf(site, g.base.local[i]))) any_unfinished = true;
    }
    if (!any_enabled && any_unfinished) out.push_back(idx);
  }
  return out;
}

StateKind FailureAugmentedGraph::KindOf(SiteId site, StateIndex s) const {
  return spec_.role(spec_.RoleForSite(site, n_)).state(s).kind;
}

}  // namespace nbcp
