#include "analysis/failure_graph.h"

#include <sstream>

#include "protocols/protocols.h"

namespace nbcp {

std::string FailureGlobalState::Key() const {
  std::string key = base.Key();
  key += '#';
  for (bool d : down) key += d ? '1' : '0';
  return key;
}

size_t FailureGlobalState::NumDown() const {
  size_t count = 0;
  for (bool d : down) count += d ? 1 : 0;
  return count;
}

Result<FailureAugmentedGraph> FailureAugmentedGraph::Build(
    const ProtocolSpec& spec, size_t n, FailureGraphOptions options) {
  if (n < 2) return Status::InvalidArgument("need at least 2 sites");
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;
  if (options.max_failures >= n) options.max_failures = n - 1;

  FailureAugmentedGraph graph(spec, n, options);
  FailureGlobalState initial;
  initial.base = MakeInitialGlobalState(spec, n);
  initial.down.assign(n, false);

  std::vector<size_t> worklist;
  graph.Intern(std::move(initial), &worklist);
  size_t cursor = 0;
  while (cursor < worklist.size()) {
    if (graph.nodes_.size() > options.max_nodes) {
      graph.complete_ = false;
      break;
    }
    graph.Expand(worklist[cursor++], &worklist);
  }
  return graph;
}

size_t FailureAugmentedGraph::Intern(FailureGlobalState state,
                                     std::vector<size_t>* worklist) {
  std::string key = state.Key();
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  size_t idx = nodes_.size();
  nodes_.push_back(std::move(state));
  index_.emplace(std::move(key), idx);
  worklist->push_back(idx);
  return idx;
}

std::vector<FailureAugmentedGraph::Firing>
FailureAugmentedGraph::EnabledFirings(const FailureGlobalState& state,
                                      SiteId site) const {
  std::vector<Firing> out;
  size_t i = site - 1;
  const Automaton& automaton = spec_.role(spec_.RoleForSite(site, n_));
  const GlobalState& g = state.base;

  for (size_t ti : automaton.TransitionsFrom(g.local[i])) {
    const Transition& t = automaton.transitions()[ti];
    if (t.trigger.kind != TriggerKind::kAnyFrom) {
      if (t.votes_yes && g.votes[i] == Vote::kNo) continue;
      if (t.votes_no && g.votes[i] == Vote::kYes) continue;
    }
    switch (t.trigger.kind) {
      case TriggerKind::kClientRequest: {
        MsgInstance want{msg::kRequest, kNoSite, site};
        if (g.messages.count(want) != 0) {
          out.push_back(Firing{&t, {want}, false});
        }
        break;
      }
      case TriggerKind::kOneFrom: {
        for (SiteId sender : spec_.ResolveGroup(t.trigger.group, site, n_)) {
          MsgInstance want{t.trigger.msg_type, sender, site};
          if (g.messages.count(want) != 0) {
            out.push_back(Firing{&t, {want}, false});
          }
        }
        break;
      }
      case TriggerKind::kAllFrom: {
        std::vector<MsgInstance> wanted;
        bool all_present = true;
        for (SiteId sender : spec_.ResolveGroup(t.trigger.group, site, n_)) {
          MsgInstance want{t.trigger.msg_type, sender, site};
          if (g.messages.count(want) == 0) {
            all_present = false;
            break;
          }
          wanted.push_back(std::move(want));
        }
        if (all_present) out.push_back(Firing{&t, std::move(wanted), false});
        break;
      }
      case TriggerKind::kAnyFrom: {
        for (SiteId sender : spec_.ResolveGroup(t.trigger.group, site, n_)) {
          MsgInstance want{t.trigger.msg_type, sender, site};
          if (g.messages.count(want) != 0) {
            out.push_back(Firing{&t, {want}, false});
          }
        }
        if (t.trigger.or_self_vote_no && g.votes[i] == Vote::kUnset) {
          out.push_back(Firing{&t, {}, true});
        }
        break;
      }
    }
  }
  return out;
}

FailureGlobalState FailureAugmentedGraph::ApplyFiring(
    const FailureGlobalState& from, SiteId site, const Transition& t,
    const std::vector<MsgInstance>& consumed, bool is_self_vote,
    size_t send_limit, bool advance_state) const {
  FailureGlobalState next = from;
  GlobalState& g = next.base;
  size_t i = site - 1;

  for (const MsgInstance& m : consumed) {
    auto it = g.messages.find(m);
    if (--it->second == 0) g.messages.erase(it);
  }

  bool casts_vote = is_self_vote || t.trigger.kind != TriggerKind::kAnyFrom;
  if (casts_vote) {
    if (t.votes_yes) g.votes[i] = Vote::kYes;
    if (t.votes_no) g.votes[i] = Vote::kNo;
  }

  size_t sent = 0;
  for (const SendSpec& send : t.sends) {
    for (SiteId target : spec_.ResolveGroup(send.to, site, n_)) {
      if (sent >= send_limit) break;
      ++sent;
      // Messages to crashed sites vanish in the network.
      if (next.down[target - 1]) continue;
      ++g.messages[MsgInstance{send.msg_type, site, target}];
    }
    if (sent >= send_limit) break;
  }

  if (advance_state) {
    g.local[i] = t.to;
    ++g.steps[i];
  }
  return next;
}

void FailureAugmentedGraph::Expand(size_t idx,
                                   std::vector<size_t>* worklist) {
  const FailureGlobalState base = nodes_[idx];
  size_t failures = base.NumDown();

  for (size_t i = 0; i < n_; ++i) {
    if (base.down[i]) continue;  // Crashed sites fire nothing.
    SiteId site = static_cast<SiteId>(i + 1);
    std::vector<Firing> firings = EnabledFirings(base, site);

    // Normal (atomic) firings.
    for (const Firing& f : firings) {
      FailureGlobalState next =
          ApplyFiring(base, site, *f.transition, f.consumed, f.self_vote,
                      SIZE_MAX, /*advance_state=*/true);
      Intern(std::move(next), worklist);
      ++num_edges_;
    }

    if (failures >= options_.max_failures) continue;

    // Clean crash between transitions: the site stops; in-flight messages
    // addressed to it will never be consumed (drop them to keep states
    // canonical).
    {
      FailureGlobalState next = base;
      next.down[i] = true;
      for (auto it = next.base.messages.begin();
           it != next.base.messages.end();) {
        if (it->first.to == site) {
          it = next.base.messages.erase(it);
        } else {
          ++it;
        }
      }
      Intern(std::move(next), worklist);
      ++num_edges_;
    }

    // Partial-send crashes inside each enabled transition: the trigger is
    // consumed, only a strict prefix of the messages escapes, the local
    // state does not advance, and the site is down.
    if (options_.partial_sends) {
      for (const Firing& f : firings) {
        size_t total_sends = 0;
        for (const SendSpec& send : f.transition->sends) {
          total_sends +=
              spec_.ResolveGroup(send.to, site, n_).size();
        }
        for (size_t prefix = 0; prefix < total_sends; ++prefix) {
          FailureGlobalState next =
              ApplyFiring(base, site, *f.transition, f.consumed,
                          f.self_vote, prefix, /*advance_state=*/false);
          next.down[i] = true;
          for (auto it = next.base.messages.begin();
               it != next.base.messages.end();) {
            if (it->first.to == site) {
              it = next.base.messages.erase(it);
            } else {
              ++it;
            }
          }
          Intern(std::move(next), worklist);
          ++num_edges_;
        }
      }
    }
  }
}

std::vector<size_t> FailureAugmentedGraph::InconsistentNodes() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].base.IsInconsistent(spec_)) out.push_back(i);
  }
  return out;
}

StateKind FailureAugmentedGraph::KindOf(SiteId site, StateIndex s) const {
  return spec_.role(spec_.RoleForSite(site, n_)).state(s).kind;
}

}  // namespace nbcp
