#include "analysis/termination_validation.h"

#include <sstream>

#include "analysis/concurrency_set.h"
#include "analysis/state_graph.h"
#include "termination/backup_coordinator.h"

namespace nbcp {

Result<TerminationValidationReport> ValidateTerminationRule(
    const ProtocolSpec& spec, size_t n) {
  auto graph = ReachableStateGraph::Build(spec, n);
  if (!graph.ok()) return graph.status();
  if (!graph->complete()) {
    return Status::Internal("state graph truncated; raise max_nodes");
  }
  ConcurrencyAnalysis analysis = ConcurrencyAnalysis::Compute(*graph);

  TerminationValidationReport report;
  report.global_states = graph->num_nodes();

  for (size_t node = 0; node < graph->num_nodes(); ++node) {
    const GlobalState& g = graph->node(node);

    // Final states already reached anywhere in G constrain the decision.
    bool any_commit = false;
    bool any_abort = false;
    for (size_t i = 0; i < n; ++i) {
      StateKind kind = graph->KindOf(static_cast<SiteId>(i + 1), g.local[i]);
      if (kind == StateKind::kCommit) any_commit = true;
      if (kind == StateKind::kAbort) any_abort = true;
    }

    // Every nonempty survivor subset; the complement crashes right now,
    // taking its undelivered knowledge with it.
    for (uint32_t mask = 1; mask < (1u << n); ++mask) {
      std::vector<std::pair<SiteId, StateIndex>> survivors;
      for (size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) {
          survivors.emplace_back(static_cast<SiteId>(i + 1), g.local[i]);
        }
      }
      // The backup is the highest-id survivor (as the bully election picks).
      const auto& [backup_site, backup_state] = survivors.back();

      ++report.scenarios;
      Result<Outcome> decision = CooperativeTerminationDecision(
          analysis, backup_site, backup_state, survivors);
      if (!decision.ok()) {
        ++report.blocked;
        continue;
      }
      ++report.decided;
      bool bad = (*decision == Outcome::kCommitted && any_abort) ||
                 (*decision == Outcome::kAborted && any_commit);
      if (bad) {
        std::ostringstream why;
        why << "state " << g.ToString(spec) << " survivors mask=" << mask
            << " decided " << ToString(*decision) << " but "
            << (any_commit ? "a commit" : "an abort")
            << " already exists";
        report.inconsistencies.push_back(why.str());
      }
    }
  }
  return report;
}

}  // namespace nbcp
