#ifndef NBCP_ANALYSIS_CONFORMANCE_H_
#define NBCP_ANALYSIS_CONFORMANCE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/global_state.h"
#include "analysis/state_graph.h"
#include "analysis/symmetry.h"
#include "common/types.h"
#include "fsa/protocol_spec.h"
#include "trace/trace.h"

namespace nbcp {

/// A transition firing predicted from the runtime engine's deterministic
/// semantics: the transition index within the site's role automaton, the
/// inbox keys it consumes, and whether it fires spontaneously as the site's
/// own "no" vote.
struct PredictedFiring {
  size_t transition = 0;
  std::vector<std::pair<std::string, SiteId>> consumed;
  bool self_vote = false;
};

/// Deterministic replica of ProtocolEngine::TryFireOne: given a site's local
/// state, buffered (delivered-unconsumed) messages and a-priori vote, returns
/// the transition the engine will fire next, or nullopt when quiescent.
/// `vote` is the site's preset vote (the engine default is yes);
/// `vote_cast` must reflect whether the site already emitted a vote.
std::optional<PredictedFiring> PredictNextFiring(
    const ProtocolSpec& spec, size_t n, SiteId site, StateIndex state,
    const std::map<std::pair<std::string, SiteId>, int>& inbox,
    std::optional<bool> vote, bool vote_cast);

/// Why a trace failed conformance. Divergence kinds (the implementation does
/// not refine the model) are distinct from invariant kinds (the execution
/// reached a state violating atomicity/C2, whether or not it refines).
enum class ConformanceIssueKind : uint8_t {
  // --- divergences (exit 2) ---
  kUnknownState = 0,       ///< Reached a global state outside the graph.
  kUnexplainedTransition,  ///< State change with no enabled engine firing.
  kTransitionMismatch,     ///< Fired into a different state than predicted.
  kSendMismatch,           ///< Observed sends differ from the spec's.
  kVoteMismatch,           ///< Observed vote differs from the transition's.
  kDecisionMismatch,       ///< Decision event contradicts the local state.
  // --- invariant violations (exit 3) ---
  kAtomicityViolation,     ///< Commit and abort coexist.
  kCommitWithoutYes,       ///< Commit occupied without unanimous yes votes.
  kUndecidedTerminal,      ///< Run went quiescent with undecided sites.
};

std::string ToString(ConformanceIssueKind kind);

/// One conformance finding, anchored to the trace position that exposed it.
struct ConformanceIssue {
  ConformanceIssueKind kind = ConformanceIssueKind::kUnknownState;
  SimTime at = 0;
  SiteId site = kNoSite;
  std::string detail;

  std::string ToString() const;
};

/// Online implementation<->model conformance checker.
///
/// Feed it the TraceEvent stream of ONE transaction's execution (install as
/// the TraceRecorder sink); it mirrors the execution into the analysis
/// model's vocabulary — a GlobalState of local states, cast votes, step
/// counts and the outstanding-message multiset — by replaying the engine's
/// deterministic firing rule over the observed deliveries. After every
/// mirrored firing it checks
///   (a) the predicted firing matches the observed state change, vote and
///       sends (the implementation executes the spec's transitions);
///   (b) the resulting abstract global state is a node of the statically
///       computed reachable-state graph (soundness against the model);
///   (c) atomicity / commit-implies-unanimous-yes hold.
/// Visited node indices accumulate for coverage reporting.
///
/// The model is failure-free: the first crash / link-cut / drop /
/// termination event degrades the checker — mirroring stops and only the
/// outcome-atomicity check (which must hold under failures too) remains,
/// fed by decision events.
///
/// The graph must be built WITHOUT symmetry reduction: canonicalization is
/// heuristic (orbit-equivalent states may intern to different
/// representatives), so membership tests against a reduced graph could
/// report false divergences. Orbit-level coverage is computed separately
/// (see OrbitKey).
class ConformanceChecker {
 public:
  /// `spec`, `graph` must outlive the checker; `graph` must be unreduced
  /// and built from `spec` with the same `n`. `votes[i]` is site i+1's
  /// preset vote.
  ConformanceChecker(const ProtocolSpec* spec, size_t n,
                     const ReachableStateGraph* graph, TransactionId txn,
                     std::vector<bool> votes);

  /// Consumes one trace event (events of other transactions are ignored).
  void OnEvent(const TraceEvent& e);

  /// Terminal checks, to call once the run is quiescent. `expect_decided`
  /// adds the kUndecidedTerminal check (failure-free runs of well-formed
  /// protocols must decide everywhere).
  void Finish(bool expect_decided);

  bool degraded() const { return degraded_; }
  const std::vector<ConformanceIssue>& divergences() const {
    return divergences_;
  }
  const std::vector<ConformanceIssue>& violations() const {
    return violations_;
  }
  /// Graph node indices the mirrored execution visited (initial included).
  const std::set<size_t>& visited() const { return visited_; }
  /// Mirrored model state (meaningful while not degraded).
  const GlobalState& mirror() const { return mirror_; }
  /// Engine firings mirrored so far.
  size_t firings() const { return firings_; }

 private:
  struct SiteMirror {
    /// Delivered-unconsumed messages, keyed like the engine inbox.
    std::map<std::pair<std::string, SiteId>, int> inbox;
    bool vote_cast = false;
    bool decided = false;
    /// Observations since the last state change, reconciled at the next
    /// kStateChange (the engine emits vote/sends before entering the
    /// state).
    std::optional<bool> observed_vote;
    std::vector<std::pair<std::string, SiteId>> observed_sends;
    /// Decisions observed via kDecision / kTerminationDecide (survives
    /// degradation; feeds the terminal atomicity check).
    std::optional<Outcome> observed_outcome;
  };

  void OnStateChange(const TraceEvent& e);
  void CheckMirror(const TraceEvent& e);
  void Degrade(const char* why);
  void AddDivergence(ConformanceIssueKind kind, const TraceEvent& e,
                     std::string detail);
  void AddViolation(ConformanceIssueKind kind, SimTime at, SiteId site,
                    std::string detail);
  const Automaton& RoleOf(SiteId site) const {
    return spec_->role(spec_->RoleForSite(site, n_));
  }

  const ProtocolSpec* spec_;
  size_t n_;
  const ReachableStateGraph* graph_;
  TransactionId txn_;
  std::vector<bool> votes_;
  /// Key -> node index of the unreduced graph.
  std::unordered_map<std::string, size_t> node_index_;

  GlobalState mirror_;
  std::vector<SiteMirror> sites_;
  std::set<size_t> visited_;
  std::vector<ConformanceIssue> divergences_;
  std::vector<ConformanceIssue> violations_;
  size_t firings_ = 0;
  bool degraded_ = false;
  bool finished_ = false;
};

/// Exact orbit canonicalization for coverage-modulo-symmetry: the
/// lexicographically least Key() over every class-preserving site
/// permutation of `g`. Exponential in class sizes — intended for the small
/// populations schedule exploration handles (n <= ~6).
std::string OrbitKey(const SiteSymmetry& symmetry, const GlobalState& g);

}  // namespace nbcp

#endif  // NBCP_ANALYSIS_CONFORMANCE_H_
