#ifndef NBCP_ANALYSIS_SYMMETRY_H_
#define NBCP_ANALYSIS_SYMMETRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/global_state.h"
#include "common/types.h"
#include "fsa/protocol_spec.h"

namespace nbcp {

/// Partition of the site population into interchangeability classes.
///
/// Two sites are in the same class when they execute the same role *and*
/// the protocol's semantics are invariant under swapping them: all message
/// groups the spec can use resolve to class-invariant site sets. That holds
/// for the central-site paradigm (coordinator fixed, slaves interchangeable)
/// and the decentralized paradigm (all peers interchangeable). The linear
/// paradigm addresses sites by chain position (next/prev), which is not
/// permutation-invariant, so every linear site is its own class and no
/// reduction applies.
struct SiteSymmetry {
  size_t n = 0;
  std::vector<int> classes;  ///< classes[i] = class of site i+1.

  /// True when some class has at least two members (reduction possible).
  bool permutable = false;

  /// Number of sites in the class of `site`.
  size_t ClassSize(SiteId site) const;
};

SiteSymmetry ComputeSiteSymmetry(const ProtocolSpec& spec, size_t n);

/// A bijection on sites 1..n: perm[i] = image of site i+1. kNoSite (the
/// client pseudo-sender) is always mapped to itself.
using SitePermutation = std::vector<SiteId>;

SitePermutation IdentityPermutation(size_t n);

/// Composition: Apply(Compose(a, b), s) == Apply(a, Apply(b, s)).
SitePermutation ComposePermutations(const SitePermutation& a,
                                    const SitePermutation& b);

SitePermutation InvertPermutation(const SitePermutation& perm);

/// Image of `site` (kNoSite maps to itself).
SiteId ApplySitePermutation(const SitePermutation& perm, SiteId site);

/// Relabels sites of `g` by `perm`: local states, votes and steps move with
/// their site, and message endpoints are rewritten.
GlobalState PermuteGlobalState(const GlobalState& g,
                               const SitePermutation& perm);

/// Chooses the canonical representative of the orbit of `g` under
/// role-class-preserving site permutations: members of each permutable
/// class are sorted by a local signature (state, vote, step count, and the
/// multiset of incident messages abstracted to counterpart classes).
///
/// The returned permutation maps `g` onto its representative:
///   representative == PermuteGlobalState(g, perm).
///
/// The signature sort is a heuristic canonicalization: orbit-equivalent
/// states may occasionally map to different representatives (less
/// reduction), but the representative is always an actual permutation image
/// of `g` — reachability and all class-invariant properties are preserved
/// exactly (see docs/analysis.md for the soundness argument).
///
/// `down`, when non-null, is a per-site crash flag (failure-augmented
/// graphs): it joins the signature so only sites with equal crash status
/// trade places; the caller permutes the flag vector alongside the state.
SitePermutation CanonicalPermutation(const SiteSymmetry& symmetry,
                                     const GlobalState& g,
                                     const std::vector<bool>* down);

}  // namespace nbcp

#endif  // NBCP_ANALYSIS_SYMMETRY_H_
