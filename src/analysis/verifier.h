#ifndef NBCP_ANALYSIS_VERIFIER_H_
#define NBCP_ANALYSIS_VERIFIER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "analysis/nonblocking.h"
#include "analysis/param/parametric.h"
#include "analysis/resiliency.h"
#include "analysis/witness.h"
#include "common/result.h"
#include "fsa/protocol_spec.h"
#include "obs/json.h"

namespace nbcp {

/// Knobs for one VerifyProtocol run.
struct VerifyOptions {
  size_t n = 3;               ///< Sites in the analyzed population.
  size_t max_nodes = 500000;  ///< Reachable-graph node budget.
  /// Canonicalize global states modulo permutations of same-role sites
  /// before interning (sound for every verdict the pipeline derives — see
  /// docs/analysis.md).
  bool symmetry_reduction = true;
  /// Also build the unreduced graph and record its node count, so the
  /// report can state the reduction factor. Costs a second BFS.
  bool compare_unreduced = false;
  /// Build the failure-augmented graph and look for blocking scenarios.
  bool with_failure_graph = true;
  size_t max_failures = 1;          ///< Crash budget for the failure graph.
  size_t failure_max_nodes = 500000;
  /// Extract concrete execution witnesses for violations and blocking.
  bool witnesses = true;
  size_t max_witnesses = 4;  ///< Cap on theorem-violation witnesses.
  /// Run the parametric (all-n) stage: counter-abstracted verification
  /// whose verdict covers every site population at once.
  bool parametric = false;
  ParamOptions param;
};

/// One extracted witness plus its replayable trace.
struct WitnessEntry {
  Witness witness;
  /// JSONL in the nbcp-trace format; empty when trace generation was not
  /// possible (e.g. the spec is not a registered protocol able to replay).
  std::string trace_jsonl;
};

/// Everything the static pipeline concluded about one protocol.
struct VerificationReport {
  std::string protocol;  ///< Registry name or spec name.
  size_t n = 0;

  LintReport lint;

  bool graph_built = false;
  std::string graph_error;  ///< Build failure, when !graph_built.
  size_t graph_nodes = 0;
  size_t graph_edges = 0;
  bool graph_reduced = false;    ///< Symmetry reduction actually engaged.
  bool graph_truncated = false;
  /// Node count of the unreduced graph (0 = not computed). With
  /// compare_unreduced this quantifies the symmetry saving.
  size_t unreduced_nodes = 0;
  bool unreduced_truncated = false;

  NonblockingReport theorem;
  ResiliencyReport resiliency;

  bool failure_graph_built = false;
  size_t failure_nodes = 0;
  size_t failure_edges = 0;
  bool failure_truncated = false;
  size_t stuck_nodes = 0;  ///< Blocking scenarios found under failures.

  std::vector<WitnessEntry> witnesses;

  bool parametric_ran = false;  ///< The all-n stage was requested and ran.
  ParametricReport parametric;

  /// True when every verdict covers the full reachable set (no truncation
  /// and the graph was built).
  bool conclusive() const {
    return graph_built && !graph_truncated &&
           (!failure_graph_built || !failure_truncated);
  }

  /// CI exit code:
  ///   0  nonblocking, no lint errors, conclusive
  ///   2  theorem violations (C1/C2) at the analyzed n, or a concretized
  ///      parametric violation (blocking proven for some population) —
  ///      takes precedence
  ///   3  lint errors (spec defects) without theorem violations
  ///   4  inconclusive: graph missing or truncated, or the parametric
  ///      stage could not settle the all-n verdict
  int ExitCode() const;

  /// Multi-line human-readable rendering (witness step listings included).
  std::string Render(const ProtocolSpec& spec) const;
};

/// Runs the full static pipeline on `spec`: lint, (symmetry-reduced)
/// reachable-graph construction, concurrency-set analysis, the Fundamental
/// Nonblocking Theorem, resiliency classification, failure-graph blocking
/// detection, and witness extraction for every violation found.
/// `protocol_name` labels the report and the witness traces (use the
/// registry name for replayable traces). Fails only on infrastructure
/// errors; spec defects are reported, not thrown.
Result<VerificationReport> VerifyProtocol(const ProtocolSpec& spec,
                                          const std::string& protocol_name,
                                          VerifyOptions options = {});

/// Machine-readable report (the nbcp-verify --json document). Witness
/// traces are not embedded; the CLI writes them next to the report.
Json VerificationReportToJson(const VerificationReport& report);

}  // namespace nbcp

#endif  // NBCP_ANALYSIS_VERIFIER_H_
