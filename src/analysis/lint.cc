#include "analysis/lint.h"

#include <algorithm>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/synchronicity.h"
#include "protocols/protocols.h"

namespace nbcp {

std::string ToString(LintSeverity severity) {
  return severity == LintSeverity::kError ? "error" : "warning";
}

std::string LintFinding::ToString() const {
  std::ostringstream out;
  out << nbcp::ToString(severity) << " [" << code << "]";
  if (role != kNoRole) out << " role " << role;
  out << ": " << message;
  return out.str();
}

bool LintReport::HasErrors() const { return NumErrors() > 0; }

size_t LintReport::NumErrors() const {
  size_t count = 0;
  for (const LintFinding& f : findings) {
    count += f.severity == LintSeverity::kError ? 1 : 0;
  }
  return count;
}

size_t LintReport::NumWarnings() const {
  return findings.size() - NumErrors();
}

bool LintReport::Has(const std::string& code) const {
  for (const LintFinding& f : findings) {
    if (f.code == code) return true;
  }
  return false;
}

std::string LintReport::ToString() const {
  std::ostringstream out;
  out << NumErrors() << " error(s), " << NumWarnings() << " warning(s)\n";
  for (const LintFinding& f : findings) out << "  " << f.ToString() << "\n";
  return out.str();
}

namespace {

class Linter {
 public:
  Linter(const ProtocolSpec& spec, size_t n) : spec_(spec), n_(n) {}

  LintReport Run(const ReachableStateGraph* graph) {
    for (RoleIndex r = 0; r < static_cast<RoleIndex>(spec_.num_roles());
         ++r) {
      LintRoleStructure(r);
      LintRoleGroups(r);
    }
    LintMessageVocabulary();
    LintValidateCatchAll();
    LintGraph(graph);
    return std::move(report_);
  }

 private:
  void Add(LintSeverity severity, std::string code, RoleIndex role,
           std::string message) {
    report_.findings.push_back(
        LintFinding{severity, std::move(code), role, std::move(message)});
  }

  /// Sites executing role `r` in the n-site population.
  std::vector<SiteId> SitesOfRole(RoleIndex r) const {
    std::vector<SiteId> out;
    for (SiteId site = 1; site <= static_cast<SiteId>(n_); ++site) {
      if (spec_.RoleForSite(site, n_) == r) out.push_back(site);
    }
    return out;
  }

  void LintRoleStructure(RoleIndex r) {
    const Automaton& a = spec_.role(r);
    const std::string& role_name = spec_.role_name(r);

    StateIndex initial = a.initial_state();
    if (initial == kNoState) {
      Add(LintSeverity::kError, "no-initial-state", r,
          "role '" + role_name + "' has no unique initial state");
    }

    bool has_commit = false;
    bool has_abort = false;
    for (const LocalState& s : a.states()) {
      has_commit = has_commit || s.kind == StateKind::kCommit;
      has_abort = has_abort || s.kind == StateKind::kAbort;
    }
    if (!has_commit) {
      Add(LintSeverity::kError, "no-commit-state", r,
          "role '" + role_name + "' has no commit state");
    }
    if (!has_abort) {
      Add(LintSeverity::kError, "no-abort-state", r,
          "role '" + role_name + "' has no abort state");
    }

    if (!a.IsAcyclic()) {
      Add(LintSeverity::kError, "cyclic", r,
          "role '" + role_name + "' has a cyclic state diagram");
    }

    for (const Transition& t : a.transitions()) {
      if (IsFinal(a.state(t.from).kind)) {
        Add(LintSeverity::kError, "final-state-outgoing", r,
            "role '" + role_name + "': final state '" + a.state(t.from).name +
                "' has an outgoing transition");
      }
    }

    // Reachability within the automaton (by transition structure alone).
    if (initial != kNoState && a.IsAcyclic()) {
      std::vector<bool> reached(a.num_states(), false);
      std::vector<StateIndex> stack{initial};
      reached[initial] = true;
      while (!stack.empty()) {
        StateIndex s = stack.back();
        stack.pop_back();
        for (size_t ti : a.TransitionsFrom(s)) {
          StateIndex to = a.transitions()[ti].to;
          if (!reached[to]) {
            reached[to] = true;
            stack.push_back(to);
          }
        }
      }
      for (size_t s = 0; s < a.num_states(); ++s) {
        if (!reached[s]) {
          Add(LintSeverity::kError, "unreachable-state", r,
              "role '" + role_name + "': state '" +
                  a.state(static_cast<StateIndex>(s)).name +
                  "' is unreachable from the initial state");
        }
      }
    }
  }

  bool GroupFitsParadigm(Group g) const {
    switch (spec_.paradigm()) {
      case Paradigm::kCentralSite:
        return g == Group::kCoordinator || g == Group::kSlaves;
      case Paradigm::kDecentralized:
        return g == Group::kAllPeers;
      case Paradigm::kLinear:
        return g == Group::kNextPeer || g == Group::kPrevPeer;
    }
    return false;
  }

  void LintRoleGroups(RoleIndex r) {
    const Automaton& a = spec_.role(r);
    const std::string& role_name = spec_.role_name(r);
    std::vector<SiteId> sites = SitesOfRole(r);

    for (const Transition& t : a.transitions()) {
      std::string where = "role '" + role_name + "' transition '" +
                          a.state(t.from).name + "->" + a.state(t.to).name +
                          "'";
      if (t.trigger.kind == TriggerKind::kClientRequest) {
        // The client request reaches every site under the decentralized
        // paradigm but only site 1 otherwise.
        if (spec_.paradigm() != Paradigm::kDecentralized) {
          bool routed = false;
          for (SiteId site : sites) routed = routed || site == 1;
          if (!routed) {
            Add(LintSeverity::kError, "request-unroutable", r,
                where + " awaits the client request, which only reaches "
                        "site 1 under this paradigm");
          }
        }
      } else {
        if (t.trigger.group == Group::kNone) {
          Add(LintSeverity::kError, "empty-trigger-group", r,
              where + " has a message trigger with no source group");
        } else if (!GroupFitsParadigm(t.trigger.group)) {
          Add(LintSeverity::kError, "group-paradigm-mismatch", r,
              where + " trigger group '" + nbcp::ToString(t.trigger.group) +
                  "' is meaningless under the " +
                  nbcp::ToString(spec_.paradigm()) + " paradigm");
        } else if (!sites.empty()) {
          bool resolvable = false;
          for (SiteId site : sites) {
            if (!spec_.ResolveGroup(t.trigger.group, site, n_).empty()) {
              resolvable = true;
              break;
            }
          }
          if (!resolvable) {
            Add(LintSeverity::kError, "unsatisfiable-trigger", r,
                where + " trigger group '" +
                    nbcp::ToString(t.trigger.group) +
                    "' resolves to no site for any site executing the role "
                    "(n=" + std::to_string(n_) + ")");
          }
        }
      }
      for (const SendSpec& send : t.sends) {
        if (send.to == Group::kNone) {
          Add(LintSeverity::kError, "empty-send-group", r,
              where + " sends '" + send.msg_type + "' to no group");
        } else if (!GroupFitsParadigm(send.to)) {
          Add(LintSeverity::kError, "group-paradigm-mismatch", r,
              where + " send group '" + nbcp::ToString(send.to) +
                  "' is meaningless under the " +
                  nbcp::ToString(spec_.paradigm()) + " paradigm");
        }
      }
    }
  }

  void LintMessageVocabulary() {
    std::set<std::string> sent;
    std::set<std::string> consumed;
    for (RoleIndex r = 0; r < static_cast<RoleIndex>(spec_.num_roles());
         ++r) {
      for (const Transition& t : spec_.role(r).transitions()) {
        if (t.trigger.kind != TriggerKind::kClientRequest) {
          consumed.insert(t.trigger.msg_type);
        }
        for (const SendSpec& send : t.sends) sent.insert(send.msg_type);
      }
    }
    for (const std::string& type : sent) {
      if (consumed.count(type) == 0) {
        Add(LintSeverity::kWarning, "dead-message", kNoRole,
            "message type '" + type +
                "' is sent but no transition consumes it");
      }
    }
    for (const std::string& type : consumed) {
      if (type != msg::kRequest && sent.count(type) == 0) {
        Add(LintSeverity::kError, "unsent-message-trigger", kNoRole,
            "message type '" + type +
                "' triggers transitions but no role ever sends it");
      }
    }
  }

  /// Catch-all: anything Validate rejects that no specific code flagged.
  void LintValidateCatchAll() {
    if (report_.HasErrors()) return;
    Status valid = spec_.Validate();
    if (!valid.ok()) {
      Add(LintSeverity::kError, "spec-invalid", kNoRole, valid.ToString());
    }
  }

  void LintGraph(const ReachableStateGraph* graph) {
    // Graph-based checks need a structurally sound spec.
    if (report_.HasErrors()) return;

    std::optional<ReachableStateGraph> owned;
    if (graph == nullptr) {
      auto built = ReachableStateGraph::Build(spec_, n_);
      if (!built.ok()) {
        Add(LintSeverity::kWarning, "graph-unavailable", kNoRole,
            "reachable graph could not be built (" + built.status().ToString() +
                "); graph-based checks skipped");
        return;
      }
      owned = std::move(*built);
      graph = &*owned;
    }

    if (graph->truncated()) {
      // A partial graph makes every dynamic verdict unsound: frontier
      // nodes look deadlocked, unexplored states look unoccupied. Surface
      // the truncation and stop rather than report phantom findings.
      Add(LintSeverity::kWarning, "graph-truncated", kNoRole,
          "reachable graph truncated at max_nodes=" +
              std::to_string(graph->options().max_nodes) +
              "; dynamic checks (deadlock, occupancy, synchronicity) skipped");
      return;
    }

    for (size_t node : graph->DeadlockedNodes()) {
      Add(LintSeverity::kError, "deadlock", kNoRole,
          "reachable non-final global state with no enabled transition: " +
              graph->node(node).ToString(spec_));
      break;  // One example suffices.
    }

    // Occupancy per (role, state) and firings per (role, transition) —
    // class-invariant, so a symmetry-reduced graph gives the same answers.
    size_t num_roles = spec_.num_roles();
    std::vector<std::vector<bool>> occupied(num_roles);
    std::vector<std::vector<bool>> fired(num_roles);
    for (RoleIndex r = 0; r < static_cast<RoleIndex>(num_roles); ++r) {
      occupied[r].assign(spec_.role(r).num_states(), false);
      fired[r].assign(spec_.role(r).transitions().size(), false);
    }
    size_t n = graph->num_sites();
    for (size_t idx = 0; idx < graph->num_nodes(); ++idx) {
      const GlobalState& g = graph->node(idx);
      for (size_t i = 0; i < n; ++i) {
        RoleIndex r = spec_.RoleForSite(static_cast<SiteId>(i + 1), n);
        occupied[r][g.local[i]] = true;
      }
      for (const GraphEdge& e : graph->edges(idx)) {
        fired[spec_.RoleForSite(e.site, n)][e.transition] = true;
      }
    }
    for (RoleIndex r = 0; r < static_cast<RoleIndex>(num_roles); ++r) {
      const Automaton& a = spec_.role(r);
      for (size_t s = 0; s < a.num_states(); ++s) {
        if (!occupied[r][s]) {
          Add(LintSeverity::kWarning, "state-never-occupied", r,
              "role '" + spec_.role_name(r) + "' state '" +
                  a.state(static_cast<StateIndex>(s)).name +
                  "' is never occupied in the reachable graph (n=" +
                  std::to_string(n) + ")");
        }
      }
      for (size_t ti = 0; ti < a.transitions().size(); ++ti) {
        if (!fired[r][ti]) {
          const Transition& t = a.transitions()[ti];
          Add(LintSeverity::kWarning, "transition-never-fires", r,
              "role '" + spec_.role_name(r) + "' transition '" +
                  a.state(t.from).name + "->" + a.state(t.to).name +
                  "' (" + t.Label() +
                  ") fires in no reachable state (n=" + std::to_string(n) +
                  ")");
        }
      }
    }

    SynchronicityReport sync = CheckSynchronicity(*graph);
    if (!sync.synchronous_within_one()) {
      Add(LintSeverity::kWarning, "not-synchronous", kNoRole,
          "protocol is not synchronous within one state transition "
          "(max lead " + std::to_string(sync.max_lead) +
              "); buffer-state synthesis does not apply");
    }
  }

  const ProtocolSpec& spec_;
  size_t n_;
  LintReport report_;
};

}  // namespace

LintReport LintProtocol(const ProtocolSpec& spec, size_t n,
                        const ReachableStateGraph* graph) {
  return Linter(spec, n).Run(graph);
}

}  // namespace nbcp
