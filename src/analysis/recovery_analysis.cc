#include "analysis/recovery_analysis.h"

#include <sstream>

#include "analysis/concurrency_set.h"
#include "analysis/state_graph.h"
#include "termination/backup_coordinator.h"

namespace nbcp {

Result<RecoveryClassification> ClassifyIndependentRecovery(
    const ProtocolSpec& spec, size_t n) {
  FailureGraphOptions options;
  options.max_failures = 1;
  options.partial_sends = true;
  auto failure_graph = FailureAugmentedGraph::Build(spec, n, options);
  if (!failure_graph.ok()) return failure_graph.status();
  if (!failure_graph->complete()) {
    return Status::Internal("failure graph truncated; raise max_nodes");
  }

  // The cooperative rule consults the failure-free concurrency analysis.
  auto graph = ReachableStateGraph::Build(spec, n);
  if (!graph.ok()) return graph.status();
  ConcurrencyAnalysis analysis = ConcurrencyAnalysis::Compute(*graph);

  RecoveryClassification out;
  for (size_t node = 0; node < failure_graph->num_nodes(); ++node) {
    const FailureGlobalState& state = failure_graph->node(node);
    if (state.NumDown() != 1) continue;

    size_t crashed = 0;
    while (!state.down[crashed]) ++crashed;
    SiteId crashed_site = static_cast<SiteId>(crashed + 1);
    RoleIndex crashed_role = spec.RoleForSite(crashed_site, n);
    RecoveryClassification::Key key{crashed_role, state.base.local[crashed],
                                    state.base.votes[crashed]};
    auto& outcome_set = out.table_[key];

    // Survivors and their backup (highest id, as the bully elects).
    std::vector<std::pair<SiteId, StateIndex>> survivors;
    for (size_t i = 0; i < n; ++i) {
      if (state.down[i]) continue;
      survivors.emplace_back(static_cast<SiteId>(i + 1),
                             state.base.local[i]);
    }
    const auto& [backup_site, backup_state] = survivors.back();
    Result<Outcome> decision = CooperativeTerminationDecision(
        analysis, backup_site, backup_state, survivors);
    if (decision.ok()) {
      outcome_set.decided.insert(*decision);
    } else {
      outcome_set.may_block = true;
    }
  }
  return out;
}

std::string RecoveryClassification::ToString(const ProtocolSpec& spec) const {
  std::ostringstream out;
  out << "role        state  vote    survivors-may-decide     independent\n";
  for (const auto& [key, outcomes] : table_) {
    const auto& [role, state, vote] = key;
    out << "  " << spec.role_name(role);
    for (size_t pad = spec.role_name(role).size(); pad < 12; ++pad) out << ' ';
    out << spec.role(role).state(state).name << "    ";
    out << (vote == Vote::kYes ? "yes " : vote == Vote::kNo ? "no  " : "-   ");
    out << "   {";
    bool first = true;
    for (Outcome o : outcomes.decided) {
      if (!first) out << ", ";
      out << nbcp::ToString(o);
      first = false;
    }
    if (outcomes.may_block) out << (first ? "blocked" : ", blocked");
    out << "}";
    if (outcomes.independent()) {
      out << "  -> " << nbcp::ToString(outcomes.independent_outcome());
    } else {
      out << "  -> must ask";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace nbcp
