#ifndef NBCP_ANALYSIS_SYNCHRONICITY_H_
#define NBCP_ANALYSIS_SYNCHRONICITY_H_

#include <cstddef>

#include "analysis/state_graph.h"
#include "common/result.h"
#include "fsa/protocol_spec.h"

namespace nbcp {

/// Result of the synchronicity check.
///
/// "A protocol is synchronous within one state transition if one site never
/// leads another by more than one state transition during the execution of
/// the protocol." Sites that have already reached a final state have
/// completed the protocol (commit/abort shortcuts such as q->a end a site's
/// participation early) and no longer constrain the lead of the still-active
/// sites, so the metric is taken over non-final sites.
struct SynchronicityReport {
  /// Maximum over reachable global states of (max - min) transition count
  /// among sites not yet in a final state.
  int max_lead = 0;

  /// True when every concurrency set is confined to the state itself and
  /// its FSA neighbors — the property the paper derives from synchronicity
  /// ("the concurrency set ... can only contain states that are adjacent to
  /// the given state and the given state itself"). Same-role pairs are
  /// compared by automaton adjacency; cross-role pairs by adjacency of
  /// their state kinds in the union of the role automata.
  bool concurrency_within_adjacency = false;

  bool synchronous_within_one() const { return max_lead <= 1; }
};

/// Measures synchronicity over the reachable state graph of an n-site
/// execution of `spec`.
Result<SynchronicityReport> CheckSynchronicity(const ProtocolSpec& spec,
                                               size_t n);

/// As above over a prebuilt graph.
SynchronicityReport CheckSynchronicity(const ReachableStateGraph& graph);

}  // namespace nbcp

#endif  // NBCP_ANALYSIS_SYNCHRONICITY_H_
