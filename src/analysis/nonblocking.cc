#include "analysis/nonblocking.h"

#include <sstream>

#include "analysis/state_graph.h"

namespace nbcp {

std::string ToString(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kAbortAndCommitInConcurrencySet:
      return "concurrency set contains both abort and commit";
    case ViolationKind::kCommitInConcurrencySetOfNoncommittable:
      return "noncommittable state concurrent with commit";
  }
  return "unknown";
}

std::string Violation::ToString() const {
  std::ostringstream out;
  out << "site " << site << " state '" << state_name
      << "': " << nbcp::ToString(kind) << " CS=" << concurrency_set;
  return out.str();
}

std::string NonblockingReport::ToString() const {
  std::ostringstream out;
  out << (nonblocking ? "NONBLOCKING" : "BLOCKING") << " ("
      << violations.size() << " violation(s))\n";
  if (truncated) {
    out << "  WARNING: state graph truncated at max_nodes; verdict covers "
           "only the explored prefix (raise max_nodes or enable symmetry "
           "reduction)\n";
  }
  for (const Violation& v : violations) {
    out << "  " << v.ToString() << "\n";
  }
  return out.str();
}

NonblockingReport CheckNonblocking(const ConcurrencyAnalysis& analysis) {
  NonblockingReport report;
  const ReachableStateGraph& graph = analysis.graph();
  const ProtocolSpec& spec = graph.spec();
  size_t n = analysis.num_sites();

  std::vector<bool> site_ok(n, true);
  for (size_t i = 0; i < n; ++i) {
    SiteId site = static_cast<SiteId>(i + 1);
    const Automaton& automaton = spec.role(spec.RoleForSite(site, n));
    for (size_t s = 0; s < automaton.num_states(); ++s) {
      auto state = static_cast<StateIndex>(s);
      if (!analysis.IsOccupied(site, state)) continue;
      bool with_commit = analysis.ConcurrentWithCommit(site, state);
      bool with_abort = analysis.ConcurrentWithAbort(site, state);
      if (with_commit && with_abort) {
        report.violations.push_back(Violation{
            site, state, automaton.state(state).name,
            ViolationKind::kAbortAndCommitInConcurrencySet,
            analysis.FormatConcurrencySet(site, state)});
        site_ok[i] = false;
      }
      if (with_commit && !analysis.IsCommittable(site, state)) {
        report.violations.push_back(Violation{
            site, state, automaton.state(state).name,
            ViolationKind::kCommitInConcurrencySetOfNoncommittable,
            analysis.FormatConcurrencySet(site, state)});
        site_ok[i] = false;
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (site_ok[i]) {
      report.satisfying_sites.push_back(static_cast<SiteId>(i + 1));
    }
  }
  report.truncated = graph.truncated();
  report.nonblocking = report.violations.empty() && !report.truncated;
  return report;
}

Result<NonblockingReport> CheckNonblocking(const ProtocolSpec& spec, size_t n,
                                           GraphOptions options) {
  auto graph = ReachableStateGraph::Build(spec, n, options);
  if (!graph.ok()) return graph.status();
  ConcurrencyAnalysis analysis = ConcurrencyAnalysis::Compute(*graph);
  return CheckNonblocking(analysis);
}

LemmaReport CheckAdjacencyLemma(const Automaton& automaton,
                                const std::set<StateIndex>& committable) {
  LemmaReport report;
  for (size_t s = 0; s < automaton.num_states(); ++s) {
    auto state = static_cast<StateIndex>(s);
    bool adj_commit = false;
    bool adj_abort = false;
    for (StateIndex nb : automaton.Neighbors(state)) {
      if (automaton.state(nb).kind == StateKind::kCommit) adj_commit = true;
      if (automaton.state(nb).kind == StateKind::kAbort) adj_abort = true;
    }
    if (adj_commit && adj_abort) {
      report.states_adjacent_to_both.push_back(state);
    }
    if (adj_commit && committable.count(state) == 0 &&
        automaton.state(state).kind != StateKind::kCommit) {
      report.noncommittable_adjacent_to_commit.push_back(state);
    }
  }
  report.satisfied = report.states_adjacent_to_both.empty() &&
                     report.noncommittable_adjacent_to_commit.empty();
  return report;
}

Result<std::set<StateIndex>> CommittableStates(const Automaton& automaton,
                                               size_t n) {
  ProtocolSpec spec("canonical", Paradigm::kDecentralized);
  spec.AddRole("peer", automaton);
  auto graph = ReachableStateGraph::Build(spec, n);
  if (!graph.ok()) return graph.status();
  ConcurrencyAnalysis analysis = ConcurrencyAnalysis::Compute(*graph);
  std::set<StateIndex> out;
  for (size_t s = 0; s < automaton.num_states(); ++s) {
    auto state = static_cast<StateIndex>(s);
    bool committable = true;
    for (SiteId site = 1; site <= n; ++site) {
      if (analysis.IsOccupied(site, state) &&
          !analysis.IsCommittable(site, state)) {
        committable = false;
        break;
      }
    }
    if (committable) out.insert(state);
  }
  return out;
}

}  // namespace nbcp
