#ifndef NBCP_ANALYSIS_BUFFER_SYNTHESIS_H_
#define NBCP_ANALYSIS_BUFFER_SYNTHESIS_H_

#include <cstddef>

#include "common/result.h"
#include "fsa/protocol_spec.h"

namespace nbcp {

/// Mechanically applies the paper's design method: "blocking protocols are
/// made nonblocking by adding buffer states".
///
/// For every transition entering a commit state from a noncommittable state
/// (the adjacency forbidden by the design lemma), a buffer ("prepare to
/// commit") state is inserted:
///
///  * central-site — the coordinator's decision broadcast is split into a
///    prepare round (prepare / ack) followed by the commit broadcast; the
///    slave correspondingly passes through a buffer state;
///  * decentralized — an extra round of "prepare" interchange is inserted
///    before the move to commit.
///
/// Applied to either 2PC spec this derives the corresponding 3PC spec.
/// `n` is the site population used to decide committability. The input must
/// be synchronous within one state transition (the lemma's hypothesis) and
/// must not already use the "prepare"/"ack" message types.
///
/// The synthesized protocol is re-checked with the Fundamental Nonblocking
/// Theorem before being returned; failure to achieve nonblocking is an
/// Internal error.
Result<ProtocolSpec> SynthesizeNonblocking(const ProtocolSpec& spec, size_t n);

}  // namespace nbcp

#endif  // NBCP_ANALYSIS_BUFFER_SYNTHESIS_H_
