#include "core/workload.h"

#include <cmath>

#include "common/rng.h"

namespace nbcp {
namespace {

/// Cumulative distribution over keys 0..n-1 with P(k) proportional to
/// 1/(k+1)^s (s=0 gives uniform).
std::vector<double> KeyCdf(size_t num_keys, double skew) {
  std::vector<double> cdf(num_keys);
  double total = 0;
  for (size_t k = 0; k < num_keys; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), skew);
    cdf[k] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

size_t PickKey(const std::vector<double>& cdf, Rng& rng) {
  double u = rng.UniformDouble();
  size_t lo = 0;
  size_t hi = cdf.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

WorkloadResult RunWorkload(CommitSystem* system,
                           const WorkloadConfig& config) {
  WorkloadResult result;
  Rng rng(config.seed);
  std::vector<double> cdf = KeyCdf(config.num_keys, config.key_skew);
  size_t n = system->num_sites();

  auto make_ops = [&](size_t txn_index) {
    std::vector<KvOp> ops;
    ops.reserve(config.ops_per_transaction);
    for (size_t i = 0; i < config.ops_per_transaction; ++i) {
      KvOp op;
      op.site = static_cast<SiteId>(1 + rng.Uniform(0, n - 1));
      bool is_read = rng.UniformDouble() < config.read_fraction;
      op.kind = is_read ? KvOp::Kind::kGet : KvOp::Kind::kPut;
      op.key = "key" + std::to_string(PickKey(cdf, rng));
      if (!is_read) op.value = "v" + std::to_string(txn_index);
      ops.push_back(std::move(op));
    }
    return ops;
  };

  std::vector<TransactionId> txns;
  txns.reserve(config.num_transactions);
  SimTime start = system->simulator().now();

  if (config.mean_interarrival_us <= 0) {
    // Closed loop: one transaction at a time.
    for (size_t i = 0; i < config.num_transactions; ++i) {
      TransactionId txn = system->Begin();
      txns.push_back(txn);
      ++result.submitted;
      Status submit = system->SubmitOps(txn, make_ops(i));
      if (!submit.ok()) ++result.vote_no_submissions;
      (void)system->Launch(txn);
      system->simulator().Run();
    }
  } else {
    // Open loop: arrivals scheduled up front; transactions overlap.
    SimTime at = start;
    for (size_t i = 0; i < config.num_transactions; ++i) {
      at += static_cast<SimTime>(
          rng.Exponential(config.mean_interarrival_us));
      TransactionId txn = system->Begin();
      txns.push_back(txn);
      std::vector<KvOp> ops = make_ops(i);
      system->simulator().ScheduleAt(
          at, [system, txn, ops = std::move(ops), &result]() {
            ++result.submitted;
            Status submit = system->SubmitOps(txn, ops);
            if (!submit.ok()) ++result.vote_no_submissions;
            (void)system->Launch(txn);
          });
    }
    system->simulator().Run();
  }

  for (TransactionId txn : txns) {
    result.metrics.Record(system->Summarize(txn));
  }
  result.virtual_duration = system->simulator().now() - start;
  return result;
}

}  // namespace nbcp
