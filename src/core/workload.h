#ifndef NBCP_CORE_WORKLOAD_H_
#define NBCP_CORE_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/metrics.h"
#include "core/transaction_manager.h"

namespace nbcp {

/// Configuration of a synthetic transactional workload.
struct WorkloadConfig {
  size_t num_transactions = 100;

  /// Open-loop arrivals: exponential inter-arrival times with this mean
  /// (simulated microseconds). 0 = closed loop (next transaction starts
  /// when the previous one finishes; no concurrency, no conflicts).
  double mean_interarrival_us = 200.0;

  size_t ops_per_transaction = 3;
  size_t num_keys = 50;         ///< Smaller key space = more conflicts.
  double read_fraction = 0.3;   ///< Remaining ops are writes.

  /// Zipf-like skew: 0 = uniform key choice; larger values concentrate
  /// accesses on low-numbered keys (s-parameter of a discrete zipf).
  double key_skew = 0.0;

  uint64_t seed = 99;
};

/// Result of running a workload.
struct WorkloadResult {
  SystemMetrics metrics;
  SimTime virtual_duration = 0;   ///< First arrival to quiescence.
  size_t submitted = 0;
  size_t vote_no_submissions = 0; ///< Ops rejected at submit (lock conflicts).

  double committed_per_virtual_second() const {
    return virtual_duration == 0
               ? 0.0
               : static_cast<double>(metrics.committed) * 1e6 /
                     static_cast<double>(virtual_duration);
  }
  double abort_rate() const {
    return metrics.runs == 0
               ? 0.0
               : static_cast<double>(metrics.aborted) / metrics.runs;
  }
};

/// Drives `system` with a stream of randomly generated multi-site KV
/// transactions. Open-loop mode launches transactions at their arrival
/// times regardless of completion, so transactions overlap and contend on
/// locks — a site whose local execution hits a conflict votes no, aborting
/// that transaction (the paper's unilateral-abort scenario, en masse).
WorkloadResult RunWorkload(CommitSystem* system, const WorkloadConfig& config);

}  // namespace nbcp

#endif  // NBCP_CORE_WORKLOAD_H_
