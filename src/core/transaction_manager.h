#ifndef NBCP_CORE_TRANSACTION_MANAGER_H_
#define NBCP_CORE_TRANSACTION_MANAGER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/concurrency_set.h"
#include "analysis/state_graph.h"
#include "common/result.h"
#include "core/failure_injector.h"
#include "core/metrics.h"
#include "core/participant.h"
#include "db/local_transaction.h"
#include "fsa/protocol_spec.h"
#include "net/failure_detector.h"
#include "net/network.h"
#include "obs/blocking.h"
#include "obs/metrics_registry.h"
#include "obs/observer.h"
#include "obs/span.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace nbcp {

/// Whole-system configuration.
struct SystemConfig {
  std::string protocol = "3PC-central";  ///< A registry name.
  size_t num_sites = 3;
  uint64_t seed = 42;
  DelayModel delay{/*base_delay=*/100, /*jitter=*/50};
  SimTime detection_delay = 500;
  ParticipantConfig participant;

  /// Execution backend behind the engine interface: kSim is the
  /// single-threaded discrete-event simulation (deterministic, virtual
  /// time); kThreaded runs one worker thread per site over the in-process
  /// threaded transport with wall-clock timers (see docs/runtime.md).
  enum class Backend { kSim, kThreaded };
  Backend backend = Backend::kSim;

  /// Threaded backend: per-site inbox bound; senders block (backpressure)
  /// when the receiver's inbox is full.
  size_t inbox_capacity = 4096;

  /// Threaded backend: log every protocol start and message delivery (with
  /// causal stamps) so the run's schedule can be replayed through
  /// nbcp-explore on the simulator.
  bool record_schedule = false;

  /// Threaded backend: how long AwaitQuiescence waits for the runtime to
  /// go idle before summarizing anyway.
  int64_t quiesce_timeout_ms = 30000;

  /// Population used for the concurrency analysis backing the termination
  /// decision rule. 0 = min(num_sites, 3). Same-role sites are symmetric,
  /// so a small analyzed population classifies states for any n (verified
  /// by the test suite).
  size_t analysis_sites = 0;

  /// Safety valve for AwaitQuiescence.
  size_t max_events_per_run = 5'000'000;

  /// Record a full protocol event trace (see trace/trace.h). Off by
  /// default; intended for examples, debugging and post-mortem test
  /// assertions, not benchmarks.
  bool trace = false;

  /// Ring-buffer capacity of the trace recorder; 0 = unbounded. With a
  /// bound, the oldest events are evicted (TraceRecorder::dropped() counts
  /// them) so long-running traced workloads keep the recent window.
  size_t trace_capacity = 0;

  /// Attach a GlobalStateObserver: per-transaction live global state,
  /// online invariant checks and (with `trace` also on) a global-state
  /// timeline plus violation events in the exported trace. Works without
  /// `trace` too — events are then consumed live and not retained.
  bool observe = false;

  /// What the observer does on a failed invariant check.
  ObserverPolicy observe_policy = ObserverPolicy::kLog;

  /// Emit "global-state" timeline events into the trace (off leaves only
  /// the invariant checks).
  bool observe_timeline = true;

  /// Attach a BlockingMonitor (see obs/blocking.h): per-site,
  /// per-transaction blocked spans with cause attribution, fed from the
  /// same event bus as the observer. Works with or without `trace` and
  /// `observe`; with `observe` on, every span open/close is cross-checked
  /// against the live global state.
  bool blocking = false;
};

/// The top-level facade: a simulated n-site distributed database running a
/// pluggable commit protocol, with failure injection, termination and
/// recovery — everything the paper describes, wired together.
///
/// Typical use:
///   auto system = CommitSystem::Create(config);
///   TransactionId txn = (*system)->Begin();
///   (*system)->SubmitOps(txn, ops);      // or SetVote(...) for vote-only
///   TxnResult result = (*system)->RunToCompletion(txn);
class CommitSystem {
 public:
  /// Creates a system running the registry protocol named by
  /// `config.protocol`.
  static Result<std::unique_ptr<CommitSystem>> Create(
      const SystemConfig& config);

  /// Creates a system running a caller-supplied protocol spec (e.g. one
  /// parsed from the text format or produced by buffer-state synthesis);
  /// `config.protocol` is ignored.
  static Result<std::unique_ptr<CommitSystem>> CreateWithSpec(
      const SystemConfig& config, ProtocolSpec spec);

  ~CommitSystem();

  // --- component access ---------------------------------------------------
  /// Sim backend only (null on the threaded backend — use clock()).
  Simulator& simulator() { return *sim_; }
  /// Sim backend only (null on the threaded backend — use transport()).
  Network& network() { return *network_; }

  /// The backend-agnostic seams every component runs against.
  Clock& clock() { return *clock_; }
  Transport& transport() { return *transport_; }

  /// True when running on the threaded backend.
  bool threaded() const { return runtime_ != nullptr; }

  /// The threaded runtime, or nullptr on the sim backend.
  ThreadedRuntime* runtime() { return runtime_.get(); }

  /// The run's Lamport/vector clocks, ticked by the network (send/deliver)
  /// and the simulator (timers); every trace event carries a sample.
  CausalClockDomain& clocks() { return *clocks_; }
  const CausalClockDomain& clocks() const { return *clocks_; }
  FailureDetector& detector() { return *detector_; }
  FailureInjector& injector() { return *injector_; }
  Participant& participant(SiteId site) { return *participants_[site - 1]; }
  size_t num_sites() const { return config_.num_sites; }
  const ProtocolSpec& spec() const { return *spec_; }
  const ConcurrencyAnalysis& analysis() const { return *analysis_; }
  const SystemConfig& config() const { return config_; }
  SystemMetrics& metrics() { return metrics_; }

  /// Named counters, gauges and latency histograms fed by every layer
  /// (network, elections, termination, phase spans, per-txn results).
  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }

  /// Per-transaction, per-site commit-phase spans.
  SpanCollector& spans() { return spans_; }
  const SpanCollector& spans() const { return spans_; }

  /// The event recorder, or nullptr when both SystemConfig::trace and
  /// SystemConfig::observe are off. In observe-only mode the recorder
  /// stores nothing (store() is false) and acts as the observer's event
  /// bus.
  TraceRecorder* trace() { return trace_.get(); }

  /// The runtime invariant checker, or nullptr when SystemConfig::observe
  /// is off.
  GlobalStateObserver* observer() { return observer_.get(); }
  const GlobalStateObserver* observer() const { return observer_.get(); }

  /// The stall detector, or nullptr when SystemConfig::blocking is off.
  BlockingMonitor* blocking() { return blocking_.get(); }
  const BlockingMonitor* blocking() const { return blocking_.get(); }

  /// Prometheus text-exposition rendering of the registry, labelled with
  /// protocol/sites/seed, windowed at the current virtual time.
  std::string MetricsPrometheusText(SimTime window = 0) const;

  // --- structured export --------------------------------------------------

  /// Machine-readable snapshot of the registry plus simulator and network
  /// statistics, as a JSON document.
  std::string MetricsSnapshotJson(int indent = 2) const;

  /// The trace (events + spans) in JSON-lines form. Requires
  /// SystemConfig::trace; empty string when tracing is off.
  std::string TraceJsonl() const;

  /// The trace in Chrome trace_event form (load in chrome://tracing or
  /// Perfetto). Empty string when tracing is off.
  std::string TraceChromeJson() const;

  /// Writes TraceJsonl() / TraceChromeJson() to `path`.
  Status ExportTraceJsonl(const std::string& path) const;
  Status ExportTraceChrome(const std::string& path) const;

  // --- transaction API ----------------------------------------------------

  /// Allocates a transaction id.
  TransactionId Begin();

  /// Presets the vote of `site` for `txn`.
  void SetVote(TransactionId txn, SiteId site, bool vote);

  /// Distributes `ops` to their sites and executes the local portions.
  /// A failing site's portion makes that site vote no (status reported).
  Status SubmitOps(TransactionId txn, const std::vector<KvOp>& ops);

  /// Starts the commit protocol (the coordinator in the central-site
  /// paradigm; every site in the decentralized one). Does not advance
  /// virtual time.
  Status Launch(TransactionId txn);

  /// Sim backend: runs the simulator until the event queue drains (or the
  /// event cap is hit). Threaded backend: blocks until the runtime owes no
  /// work (empty inboxes, idle handlers, no pending timers), then feeds
  /// the recorded events to the observer/blocking monitor. Then summarizes
  /// `txn`; the result is also recorded in metrics().
  TxnResult AwaitQuiescence(TransactionId txn);

  /// Launch + AwaitQuiescence.
  TxnResult RunToCompletion(TransactionId txn);

  /// Snapshot of `txn`'s fate right now (no simulation).
  TxnResult Summarize(TransactionId txn) const;

 private:
  CommitSystem() = default;

  /// Threaded backend: replays stored trace events (from fed_events_ on)
  /// through the observer/blocking sink chain on the driver thread. The
  /// store order is a valid causal linearization — a send is stored before
  /// the delivery it caused — so the observer sees a consistent history.
  void FeedDeferredEvents();

  SystemConfig config_;
  std::unique_ptr<Simulator> sim_;              ///< Sim backend only.
  std::unique_ptr<ThreadedRuntime> runtime_;    ///< Threaded backend only.
  Clock* clock_ = nullptr;          ///< -> sim_ or runtime_->clock().
  Transport* transport_ = nullptr;  ///< -> network_ or runtime_->transport().
  std::unique_ptr<CausalClockDomain> clocks_;
  std::unique_ptr<Network> network_;            ///< Sim backend only.
  std::unique_ptr<FailureDetector> detector_;
  std::unique_ptr<ProtocolSpec> spec_;
  std::unique_ptr<ReachableStateGraph> graph_;
  std::unique_ptr<ConcurrencyAnalysis> analysis_;
  std::vector<std::unique_ptr<Participant>> participants_;
  std::unique_ptr<FailureInjector> injector_;
  std::unique_ptr<TraceRecorder> trace_;
  std::unique_ptr<GlobalStateObserver> observer_;
  std::unique_ptr<BlockingMonitor> blocking_;
  SystemMetrics metrics_;
  MetricsRegistry registry_;
  SpanCollector spans_;
  uint64_t log_time_token_ = 0;
  size_t fed_events_ = 0;  ///< FeedDeferredEvents progress cursor.

  TransactionId next_txn_ = 1;
  struct LaunchInfo {
    SimTime start_time = 0;
    uint64_t messages_before = 0;
  };
  std::map<TransactionId, LaunchInfo> launches_;
};

}  // namespace nbcp

#endif  // NBCP_CORE_TRANSACTION_MANAGER_H_
