#ifndef NBCP_CORE_METRICS_H_
#define NBCP_CORE_METRICS_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/types.h"

namespace nbcp {

/// Summary of one distributed transaction's execution.
struct TxnResult {
  TransactionId txn = kNoTransaction;

  /// Consensus outcome among sites that decided. kUndecided when nobody
  /// decided (e.g. the transaction is fully blocked).
  Outcome outcome = Outcome::kUndecided;

  /// False iff some site committed while another aborted — an atomicity
  /// violation; must never be false for a correct protocol.
  bool consistent = true;

  /// True when some operational site is still undecided at the end of the
  /// run — the blocking the paper's nonblocking protocols eliminate.
  bool blocked = false;

  /// True when the termination protocol participated in the decision.
  bool used_termination = false;

  size_t decided_sites = 0;
  size_t blocked_sites = 0;

  std::map<SiteId, Outcome> site_outcomes;

  SimTime start_time = 0;  ///< Protocol launch (virtual time).
  SimTime end_time = 0;    ///< Last decision among operational sites.
  SimTime latency() const {
    return end_time >= start_time ? end_time - start_time : 0;
  }

  uint64_t messages = 0;  ///< Network messages sent during the run.

  std::string ToString() const;
};

/// Aggregate counters over many transactions.
struct SystemMetrics {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t blocked = 0;
  uint64_t inconsistent = 0;
  uint64_t terminations = 0;
  uint64_t total_messages = 0;
  SimTime total_latency = 0;
  uint64_t runs = 0;

  void Record(const TxnResult& result);
  double mean_latency() const {
    return runs == 0 ? 0.0 : static_cast<double>(total_latency) / runs;
  }
  double mean_messages() const {
    return runs == 0 ? 0.0 : static_cast<double>(total_messages) / runs;
  }
  double blocking_rate() const {
    return runs == 0 ? 0.0 : static_cast<double>(blocked) / runs;
  }

  std::string ToString() const;
};

}  // namespace nbcp

#endif  // NBCP_CORE_METRICS_H_
