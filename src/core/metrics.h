#ifndef NBCP_CORE_METRICS_H_
#define NBCP_CORE_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>

#include "common/types.h"

namespace nbcp {

/// Summary of one distributed transaction's execution.
struct TxnResult {
  TransactionId txn = kNoTransaction;

  /// Consensus outcome among sites that decided. kUndecided when nobody
  /// decided (e.g. the transaction is fully blocked).
  Outcome outcome = Outcome::kUndecided;

  /// False iff some site committed while another aborted — an atomicity
  /// violation; must never be false for a correct protocol.
  bool consistent = true;

  /// True when some operational site is still undecided at the end of the
  /// run — the blocking the paper's nonblocking protocols eliminate.
  bool blocked = false;

  /// True when the termination protocol participated in the decision.
  bool used_termination = false;

  size_t decided_sites = 0;
  size_t blocked_sites = 0;

  std::map<SiteId, Outcome> site_outcomes;

  SimTime start_time = 0;  ///< Protocol launch (virtual time).
  SimTime end_time = 0;    ///< Last decision among operational sites.

  /// Earliest termination-protocol engagement at any site, when
  /// used_termination. 0 = the commit path ran undisturbed.
  SimTime termination_start_time = 0;

  /// Total time from launch to the last decision.
  SimTime latency() const {
    return end_time >= start_time ? end_time - start_time : 0;
  }

  /// Portion of latency() spent on the ordinary commit path: launch until
  /// the termination protocol engaged (or the end, when it never did).
  SimTime commit_path_latency() const {
    if (!used_termination || termination_start_time <= start_time) {
      return used_termination ? 0 : latency();
    }
    SimTime stop = std::min(termination_start_time, end_time);
    return stop - start_time;
  }

  /// Portion of latency() spent inside the termination protocol.
  SimTime termination_latency() const {
    return latency() - commit_path_latency();
  }

  uint64_t messages = 0;  ///< Network messages sent during the run.

  std::string ToString() const;
};

/// Aggregate counters over many transactions.
struct SystemMetrics {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t blocked = 0;
  uint64_t inconsistent = 0;
  uint64_t terminations = 0;
  uint64_t total_messages = 0;

  /// total_latency = commit_path_latency + termination_latency: the two
  /// paths are accumulated separately so the cost of engaging the
  /// termination protocol is visible on its own (Skeen's extra rounds),
  /// instead of being conflated into one mean.
  SimTime total_latency = 0;
  SimTime commit_path_latency = 0;
  SimTime termination_latency = 0;
  uint64_t runs = 0;

  void Record(const TxnResult& result);
  double mean_latency() const {
    return runs == 0 ? 0.0 : static_cast<double>(total_latency) / runs;
  }
  double mean_commit_path_latency() const {
    return runs == 0 ? 0.0
                     : static_cast<double>(commit_path_latency) / runs;
  }
  /// Mean termination-path time over the runs that engaged termination.
  double mean_termination_latency() const {
    return terminations == 0
               ? 0.0
               : static_cast<double>(termination_latency) / terminations;
  }
  double mean_messages() const {
    return runs == 0 ? 0.0 : static_cast<double>(total_messages) / runs;
  }
  double blocking_rate() const {
    return runs == 0 ? 0.0 : static_cast<double>(blocked) / runs;
  }

  std::string ToString() const;
};

}  // namespace nbcp

#endif  // NBCP_CORE_METRICS_H_
