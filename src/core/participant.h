#ifndef NBCP_CORE_PARTICIPANT_H_
#define NBCP_CORE_PARTICIPANT_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/concurrency_set.h"
#include "common/result.h"
#include "common/types.h"
#include "db/kv_store.h"
#include "db/local_transaction.h"
#include "db/lock_manager.h"
#include "db/wal.h"
#include "election/election.h"
#include "fsa/protocol_spec.h"
#include "net/failure_detector.h"
#include "runtime/transport.h"
#include "protocols/engine.h"
#include "recovery/dt_log.h"
#include "recovery/recovery_manager.h"
#include "runtime/clock.h"
#include "termination/termination.h"
#include "trace/trace.h"

namespace nbcp {

class MetricsRegistry;
class SpanCollector;

/// Per-site configuration.
struct ParticipantConfig {
  ElectionConfig election;
  TerminationConfig termination;
  RecoveryConfig recovery;
  bool use_ring_election = false;
};

/// One site of the distributed database: the integration of the protocol
/// engine, the local-atomicity substrate (WAL + KV store + locks), the DT
/// log, the election/termination machinery and the recovery protocol.
///
/// All volatile components (engine, locks, staged transactions, election
/// and termination sessions) are lost on Crash(); the WAL and DT log model
/// stable storage and survive. Recover() rebuilds the volatile state and
/// runs the paper's recovery protocol.
class Participant {
 public:
  Participant(SiteId site, const ProtocolSpec* spec, size_t n,
              Clock* clock, Transport* network, FailureDetector* detector,
              const ConcurrencyAnalysis* analysis,
              std::function<SiteId(SiteId)> analysis_site_map,
              ParticipantConfig config = {});

  Participant(const Participant&) = delete;
  Participant& operator=(const Participant&) = delete;

  /// Registers with the network and failure detector. Call once.
  Status Attach();

  /// Attaches an event recorder (nullptr to detach). Not owned.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Attaches the system's metrics registry and phase-span collector
  /// (either may be nullptr; not owned). Also forwards the registry to the
  /// termination and election machinery, and re-forwards after Recover().
  void set_obs(MetricsRegistry* metrics, SpanCollector* spans);

  SiteId site() const { return site_; }

  // --- client / transaction-manager entry points -------------------------

  /// Presets the vote this site casts for `txn` (vote-only workloads).
  void SetVote(TransactionId txn, bool vote);

  /// Executes a distributed transaction's local portion now: locks are
  /// acquired (no-wait) and writes staged. The site's vote becomes "yes iff
  /// execution and prepare succeed". kAborted on lock conflict.
  Status SubmitLocalOps(TransactionId txn, const std::vector<KvOp>& ops);

  /// Delivers the client's request to this site's protocol engine.
  Status StartProtocol(TransactionId txn);

  // --- introspection ------------------------------------------------------

  Outcome OutcomeOf(TransactionId txn) const;

  /// True if this site has any knowledge of `txn` (protocol state, DT-log
  /// records or client bookkeeping). A site that crashed before the
  /// transaction reached it knows nothing and has nothing to block on.
  bool KnowsTransaction(TransactionId txn) const;

  bool IsBlocked(TransactionId txn) const;
  bool UsedTermination(TransactionId txn) const;
  std::optional<SimTime> DecisionTime(TransactionId txn) const;

  /// When this site first engaged the termination protocol for `txn`.
  std::optional<SimTime> TerminationStartTime(TransactionId txn) const;
  StateKind CurrentKind(TransactionId txn) const;
  bool crashed() const { return crashed_; }

  ProtocolEngine& engine() { return *engine_; }
  KvStore& kv() { return *kv_; }
  LockManager& locks() { return *locks_; }
  DtLog& dt_log() { return dt_log_; }
  WriteAheadLog& wal() { return wal_; }
  TerminationProtocol& termination() { return *termination_; }

  // --- failure lifecycle (driven by the FailureInjector) -----------------

  /// Loses all volatile state. The network/detector bookkeeping is done by
  /// the injector.
  void Crash();

  /// Rebuilds volatile state from the WAL and DT log, then runs the
  /// recovery protocol for in-doubt transactions.
  void Recover();

  /// Arms a one-shot partial-broadcast trap: while sending `msg_type` for
  /// `txn`, only `allow` copies leave the site; then `on_trip` runs (the
  /// injector uses it to crash the site mid-transition).
  void ArmSendTrap(TransactionId txn, std::string msg_type, size_t allow,
                   std::function<void()> on_trip);

 private:
  void OnNetMessage(const Message& message);
  void OnSiteStatus(SiteId subject, bool up);

  bool VoteFor(TransactionId txn);
  void OnVoteCast(TransactionId txn, bool yes);
  void OnStateChange(TransactionId txn, const LocalState& state);
  void OnDecision(TransactionId txn, Outcome outcome);
  void ApplyOutcomeToDb(TransactionId txn, Outcome outcome);

  std::vector<SiteId> AliveSites() const;

  /// Starts termination for every undecided transaction, per paradigm
  /// policy, after `failed` was reported down.
  void HandleFailure(SiteId failed);

  /// Re-initiates termination of still-undecided transactions after a site
  /// recovery (the recovered site may know the outcome).
  void HandleRecoveryOf(SiteId recovered);

  struct TxnRecord {
    std::optional<bool> preset_vote;
    std::unique_ptr<LocalTransaction> local;
    std::optional<Outcome> outcome;
    SimTime decision_time = 0;
    std::optional<SimTime> termination_start;
    bool via_termination = false;
    bool blocked = false;
    bool vote_logged = false;
    bool start_logged = false;
  };
  TxnRecord& Record(TransactionId txn) { return records_[txn]; }

  struct SendTrap {
    std::string msg_type;
    size_t allow = 0;
    size_t sent = 0;
    std::function<void()> on_trip;
    bool tripped = false;
  };

  SiteId site_;
  const ProtocolSpec* spec_;
  size_t n_;
  Clock* clock_;
  Transport* network_;
  FailureDetector* detector_;
  const ConcurrencyAnalysis* analysis_;
  std::function<SiteId(SiteId)> analysis_site_map_;
  ParticipantConfig config_;

  // Stable storage (survives Crash()).
  WriteAheadLog wal_;
  DtLog dt_log_;

  // Volatile components (recreated on Recover()).
  std::unique_ptr<ProtocolEngine> engine_;
  std::unique_ptr<KvStore> kv_;
  std::unique_ptr<LockManager> locks_;
  std::unique_ptr<Election> election_;
  std::unique_ptr<TerminationProtocol> termination_;
  std::unique_ptr<RecoveryManager> recovery_;

  /// Records an event when tracing is attached.
  void Trace(TransactionId txn, TraceEventType type,
             std::string detail = "") const;

  std::unordered_map<TransactionId, TxnRecord> records_;
  std::unordered_map<TransactionId, SendTrap> send_traps_;
  TraceRecorder* trace_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  SpanCollector* spans_ = nullptr;
  bool crashed_ = false;
};

}  // namespace nbcp

#endif  // NBCP_CORE_PARTICIPANT_H_
