#ifndef NBCP_CORE_FAILURE_INJECTOR_H_
#define NBCP_CORE_FAILURE_INJECTOR_H_

#include <atomic>
#include <functional>
#include <string>

#include "common/types.h"
#include "core/participant.h"
#include "net/failure_detector.h"
#include "runtime/clock.h"
#include "runtime/transport.h"

namespace nbcp {

class MetricsRegistry;

/// Orchestrates site crashes and recoveries in a simulated system.
///
/// A crash makes the site's network endpoint unreachable, wipes the
/// participant's volatile state and informs the failure detector; a
/// recovery reverses all three and triggers the participant's recovery
/// protocol. CrashDuringBroadcast models the paper's non-atomic transition
/// under failure: "only part of the messages that should be sent during a
/// transition are actually transmitted".
class FailureInjector {
 public:
  FailureInjector(Clock* clock, Transport* network, FailureDetector* detector,
                  std::function<Participant*(SiteId)> participant)
      : clock_(clock),
        network_(network),
        detector_(detector),
        participant_(std::move(participant)) {}

  FailureInjector(const FailureInjector&) = delete;
  FailureInjector& operator=(const FailureInjector&) = delete;

  /// Crashes `site` immediately. Idempotent while the site is down.
  void CrashNow(SiteId site);

  /// Brings `site` back immediately (volatile state rebuilt from its logs,
  /// then the recovery protocol runs). Idempotent while the site is up.
  void RecoverNow(SiteId site);

  /// Schedules a crash at absolute time `at` (virtual on the simulator,
  /// microseconds since start on the threaded backend).
  EventId ScheduleCrash(SiteId site, SimTime at);

  /// Schedules a recovery at absolute virtual time `at`.
  EventId ScheduleRecovery(SiteId site, SimTime at);

  /// Arms a trap so that `site`, while broadcasting `msg_type` for `txn`,
  /// delivers only the first `allow` copies and then crashes mid-transition.
  void CrashDuringBroadcast(SiteId site, TransactionId txn,
                            std::string msg_type, size_t allow);

  /// Splits the network into two groups: all cross-group links are cut and
  /// every site starts (after the detection delay) suspecting every site
  /// of the other group. This is the scenario the paper's model excludes
  /// ("the network never fails") — provided for the quorum extension
  /// study: plain 3PC termination diverges across a partition, the quorum
  /// variant lets only the quorum side proceed.
  void Partition(const std::vector<SiteId>& group_a,
                 const std::vector<SiteId>& group_b);

  /// Restores all links and clears the partition suspicions.
  void HealPartition(const std::vector<SiteId>& group_a,
                     const std::vector<SiteId>& group_b);

  size_t crash_count() const { return crash_count_.load(); }

  /// Attaches a metrics registry (not owned; nullptr detaches): counts
  /// "fault/crashes", "fault/recoveries", "fault/partitions" and
  /// "fault/heals".
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

 private:
  Clock* clock_;
  Transport* network_;
  FailureDetector* detector_;
  std::function<Participant*(SiteId)> participant_;
  MetricsRegistry* metrics_ = nullptr;
  /// Atomic: bumped from whichever execution context trips the crash.
  std::atomic<size_t> crash_count_{0};
};

}  // namespace nbcp

#endif  // NBCP_CORE_FAILURE_INJECTOR_H_
