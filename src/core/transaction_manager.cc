#include "core/transaction_manager.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/prometheus.h"
#include "protocols/registry.h"

namespace nbcp {

Result<std::unique_ptr<CommitSystem>> CommitSystem::Create(
    const SystemConfig& config) {
  auto spec = MakeProtocol(config.protocol);
  if (!spec.ok()) return spec.status();
  return CreateWithSpec(config, std::move(*spec));
}

Result<std::unique_ptr<CommitSystem>> CommitSystem::CreateWithSpec(
    const SystemConfig& config, ProtocolSpec spec) {
  if (config.num_sites < 2) {
    return Status::InvalidArgument("need at least 2 sites");
  }

  const bool threaded = config.backend == SystemConfig::Backend::kThreaded;
  if (threaded && (config.observe || config.blocking) &&
      config.trace_capacity != 0) {
    return Status::InvalidArgument(
        "threaded observe/blocking need an unbounded trace buffer "
        "(trace_capacity = 0): events are replayed to the observer "
        "after quiescence");
  }

  auto system = std::unique_ptr<CommitSystem>(new CommitSystem());
  system->config_ = config;
  // Causal clocks are always on: the transport ticks sends/deliveries, the
  // clock ticks timers, and (when tracing) every event carries a sample.
  system->clocks_ = std::make_unique<CausalClockDomain>(config.num_sites);
  if (threaded) {
    ThreadedRuntime::Options rt;
    rt.seed = config.seed;
    rt.inbox_capacity = config.inbox_capacity;
    rt.record_schedule = config.record_schedule;
    rt.quiesce_timeout_ms = config.quiesce_timeout_ms;
    system->runtime_ = std::make_unique<ThreadedRuntime>(rt);
    system->clock_ = &system->runtime_->clock();
    system->transport_ = &system->runtime_->transport();
  } else {
    system->sim_ = std::make_unique<Simulator>(config.seed);
    system->network_ =
        std::make_unique<Network>(system->sim_.get(), config.delay);
    system->clock_ = system->sim_.get();
    system->transport_ = system->network_.get();
  }
  system->clock_->set_clocks(system->clocks_.get());
  system->transport_->set_clocks(system->clocks_.get());
  system->detector_ = std::make_unique<FailureDetector>(
      system->clock_, system->transport_, config.detection_delay);
  system->spec_ = std::make_unique<ProtocolSpec>(std::move(spec));

  Status valid = system->spec_->Validate();
  if (!valid.ok()) return valid;

  // Concurrency analysis backing the termination decision rule. Same-role
  // sites are symmetric, so a small analyzed population suffices for any n.
  size_t analysis_n = config.analysis_sites != 0
                          ? config.analysis_sites
                          : std::min<size_t>(config.num_sites, 3);
  auto graph = ReachableStateGraph::Build(*system->spec_, analysis_n);
  if (!graph.ok()) return graph.status();
  if (!graph->complete()) {
    return Status::Internal("analysis state graph truncated");
  }
  system->graph_ =
      std::make_unique<ReachableStateGraph>(std::move(*graph));
  system->analysis_ = std::make_unique<ConcurrencyAnalysis>(
      ConcurrencyAnalysis::Compute(*system->graph_));

  // Maps a live site to the same-role representative inside the analyzed
  // population (shared with the runtime observer and offline replay).
  auto site_map = MakeAnalysisSiteMap(system->spec_->paradigm(),
                                      config.num_sites, analysis_n);

  system->spans_.set_metrics(&system->registry_);
  system->transport_->set_metrics(&system->registry_);

  for (SiteId site = 1; site <= config.num_sites; ++site) {
    system->participants_.push_back(std::make_unique<Participant>(
        site, system->spec_.get(), config.num_sites, system->clock_,
        system->transport_, system->detector_.get(),
        system->analysis_.get(), site_map, config.participant));
    system->participants_.back()->set_obs(&system->registry_,
                                          &system->spans_);
    Status attached = system->participants_.back()->Attach();
    if (!attached.ok()) return attached;
  }

  if (threaded && (config.trace || config.observe || config.blocking ||
                   config.record_schedule)) {
    // A trace consumer is attached: run the workers in serialized-
    // observation mode so every triggering event and the transition it
    // causes form one atomic block in the recorded stream (the
    // event-at-a-time semantics cut-based checks assume). Without a
    // consumer the workers run fully in parallel.
    system->runtime_->transport().set_serialized(true);
  }

  if (config.trace || config.observe || config.blocking) {
    system->trace_ = std::make_unique<TraceRecorder>(config.trace_capacity);
    TraceRecorder* recorder = system->trace_.get();
    recorder->set_clocks(system->clocks_.get());
    // With observe-only (no trace), the recorder is a pure event bus: it
    // stores nothing and just feeds the observer sink.
    // On the threaded backend the observer/blocking monitor are fed from
    // the stored events after quiescence, so storage must be on even in
    // observe-only mode.
    recorder->set_store(config.trace ||
                        (threaded && (config.observe || config.blocking)));
    Clock* clock = system->clock_;
    for (auto& participant : system->participants_) {
      participant->set_trace(recorder);
    }
    system->transport_->set_observer(
        [recorder, clock](const Message& m, char phase) {
          switch (phase) {
            case 's':
              recorder->Record(clock->now(), m.from, m.txn,
                               TraceEventType::kMessageSent,
                               m.type + "->" + std::to_string(m.to), m.seq);
              break;
            case 'd':
              recorder->Record(clock->now(), m.to, m.txn,
                               TraceEventType::kMessageDelivered,
                               m.type + "<-" + std::to_string(m.from),
                               m.seq);
              break;
            default:
              recorder->Record(clock->now(), m.to, m.txn,
                               TraceEventType::kMessageDropped,
                               m.type + "<-" + std::to_string(m.from),
                               m.seq);
          }
        });
    // Link-topology changes matter to the observer (concurrency-set checks
    // are only sound failure-free) and to trace consumers.
    system->transport_->set_link_observer(
        [recorder, clock](SiteId a, SiteId b, bool cut) {
          recorder->Record(clock->now(), kNoSite, kNoTransaction,
                           cut ? TraceEventType::kLinkCut
                               : TraceEventType::kLinkRestored,
                           std::to_string(a) + "-" + std::to_string(b));
        });
  }

  if (config.observe) {
    ObserverConfig obs_config;
    obs_config.policy = config.observe_policy;
    obs_config.timeline = config.observe_timeline && config.trace;
    system->observer_ = std::make_unique<GlobalStateObserver>(
        system->spec_.get(), config.num_sites, system->analysis_.get(),
        site_map, obs_config);
    system->observer_->set_trace(system->trace_.get());
    system->observer_->set_metrics(&system->registry_);
  }

  if (config.blocking) {
    system->blocking_ = std::make_unique<BlockingMonitor>(
        system->spec_.get(), config.num_sites);
    system->blocking_->set_observer(system->observer_.get());
    system->blocking_->set_metrics(&system->registry_);
  }

  if (!threaded &&
      (system->observer_ != nullptr || system->blocking_ != nullptr)) {
    // Shared event bus: the observer consumes each event first so the
    // monitor's cross-checks see up-to-date global state. Threaded runs
    // skip the live sink — TraceRecorder invokes sinks outside its lock,
    // so concurrent site threads would feed the (unlocked) observer out of
    // order; instead AwaitQuiescence replays the stored events on the
    // driver thread (FeedDeferredEvents).
    system->trace_->set_sink(
        [obs = system->observer_.get(),
         blocking = system->blocking_.get()](const TraceEvent& e) {
          if (obs != nullptr) obs->OnEvent(e);
          if (blocking != nullptr) blocking->OnEvent(e);
        });
  }

  // Log records carry time context while this system is alive.
  system->log_time_token_ = Logger::Get().SetTimeSource(
      [clock = system->clock_]() { return clock->now(); });

  system->injector_ = std::make_unique<FailureInjector>(
      system->clock_, system->transport_, system->detector_.get(),
      [raw = system.get()](SiteId site) -> Participant* {
        if (site == kNoSite || site > raw->config_.num_sites) return nullptr;
        return raw->participants_[site - 1].get();
      });
  system->injector_->set_metrics(&system->registry_);

  return system;
}

CommitSystem::~CommitSystem() {
  // Stop the threaded runtime (timer thread + site workers) before tearing
  // down anything they might touch — including the logger's time source,
  // which Logger::Write reads unguarded.
  if (runtime_ != nullptr) runtime_->Shutdown();
  Logger::Get().ClearTimeSource(log_time_token_);
}

TransactionId CommitSystem::Begin() { return next_txn_++; }

void CommitSystem::SetVote(TransactionId txn, SiteId site, bool vote) {
  // Per-site state: run in the site's execution context (inline on the
  // simulator, the site's worker thread on the threaded backend).
  transport_->PostSync(site,
                       [this, txn, site, vote]() {
                         participant(site).SetVote(txn, vote);
                       });
}

Status CommitSystem::SubmitOps(TransactionId txn,
                               const std::vector<KvOp>& ops) {
  std::map<SiteId, std::vector<KvOp>> by_site;
  for (const KvOp& op : ops) {
    if (op.site == kNoSite || op.site > config_.num_sites) {
      return Status::InvalidArgument("op addressed to unknown site");
    }
    by_site[op.site].push_back(op);
  }
  Status overall = Status::OK();
  for (const auto& [site, site_ops] : by_site) {
    Status s = Status::OK();
    transport_->PostSync(site, [this, txn, site = site, &site_ops, &s]() {
      s = participant(site).SubmitLocalOps(txn, site_ops);
    });
    if (!s.ok()) overall = s;  // The site will vote no; report it.
  }
  return overall;
}

Status CommitSystem::Launch(TransactionId txn) {
  LaunchInfo info;
  info.start_time = clock_->now();
  info.messages_before = transport_->StatsSnapshot().messages_sent;
  launches_[txn] = info;

  // Starting the protocol mutates per-site state, so it must happen in the
  // site's own execution context: PostSync is inline on the simulator and
  // a blocking hop to the site's worker on the threaded backend. The
  // request arrival is a local event in the causal order.
  auto start_at = [this, txn](SiteId site) {
    Status s = Status::OK();
    transport_->PostSync(site, [this, txn, site, &s]() {
      ClockStamp stamp = clocks_->OnLocal(site);
      if (runtime_ != nullptr) runtime_->RecordStart(site, std::move(stamp));
      s = participant(site).StartProtocol(txn);
    });
    return s;
  };

  if (spec_->paradigm() != Paradigm::kDecentralized) {
    // Central-site and linear: the client hands the request to site 1.
    return start_at(1);
  }
  Status overall = Status::OK();
  for (SiteId site = 1; site <= config_.num_sites; ++site) {
    if (!transport_->IsSiteUp(site)) continue;
    Status s = start_at(site);
    if (!s.ok()) overall = s;
  }
  return overall;
}

void CommitSystem::FeedDeferredEvents() {
  if (trace_ == nullptr || !trace_->store()) return;
  if (observer_ == nullptr && blocking_ == nullptr) return;
  // Index-based loop: the observer appends its own timeline events to the
  // same store while we iterate, and those must be fed to the blocking
  // monitor too. The observer ignores the kinds it emits, so this
  // terminates.
  while (true) {
    size_t size = trace_->events().size();
    if (fed_events_ >= size) break;
    const TraceEvent e = trace_->events()[fed_events_++];
    if (observer_ != nullptr) observer_->OnEvent(e);
    if (blocking_ != nullptr) blocking_->OnEvent(e);
  }
}

TxnResult CommitSystem::Summarize(TransactionId txn) const {
  TxnResult result;
  result.txn = txn;

  bool any_commit = false;
  bool any_abort = false;
  SimTime last_decision = 0;
  for (SiteId site = 1; site <= config_.num_sites; ++site) {
    const Participant& p = *participants_[site - 1];
    Outcome outcome = p.OutcomeOf(txn);
    result.site_outcomes[site] = outcome;
    if (outcome == Outcome::kCommitted) any_commit = true;
    if (outcome == Outcome::kAborted) any_abort = true;
    if (outcome != Outcome::kUndecided) {
      ++result.decided_sites;
      auto when = p.DecisionTime(txn);
      if (when.has_value()) last_decision = std::max(last_decision, *when);
    } else if (transport_->IsSiteUp(site) && p.KnowsTransaction(txn)) {
      // Operational, aware of the transaction, yet unable to decide:
      // blocked. (A site that crashed before the transaction ever reached
      // it has no local state to resolve and is not blocked.)
      ++result.blocked_sites;
    }
    if (p.UsedTermination(txn)) result.used_termination = true;
    auto term_start = p.TerminationStartTime(txn);
    if (term_start.has_value()) {
      result.termination_start_time =
          result.termination_start_time == 0
              ? *term_start
              : std::min(result.termination_start_time, *term_start);
    }
  }

  result.consistent = !(any_commit && any_abort);
  result.blocked = result.blocked_sites > 0;
  if (any_commit) {
    result.outcome = Outcome::kCommitted;
  } else if (any_abort) {
    result.outcome = Outcome::kAborted;
  }

  auto launch = launches_.find(txn);
  if (launch != launches_.end()) {
    result.start_time = launch->second.start_time;
    result.messages = transport_->StatsSnapshot().messages_sent -
                      launch->second.messages_before;
  }
  result.end_time = std::max(last_decision, result.start_time);
  return result;
}

TxnResult CommitSystem::AwaitQuiescence(TransactionId txn) {
  if (runtime_ != nullptr) {
    if (!runtime_->WaitQuiescent()) {
      NBCP_LOG(kWarn) << "threaded runtime did not quiesce within "
                      << config_.quiesce_timeout_ms << "ms";
    }
    // Site threads are idle now; replay the stored trace to the observer
    // and blocking monitor on this (the driver) thread. Store order is a
    // valid linearization of the causal order.
    FeedDeferredEvents();
  } else {
    size_t executed = sim_->Run(config_.max_events_per_run);
    if (executed >= config_.max_events_per_run) {
      NBCP_LOG(kWarn) << "event cap reached while awaiting quiescence";
    }
  }
  TxnResult result = Summarize(txn);
  metrics_.Record(result);

  registry_.counter("txn/completed").Inc();
  if (result.outcome == Outcome::kCommitted) {
    registry_.counter("txn/committed").Inc();
  } else if (result.outcome == Outcome::kAborted) {
    registry_.counter("txn/aborted").Inc();
  }
  if (result.blocked) registry_.counter("txn/blocked").Inc();
  if (result.used_termination) registry_.counter("txn/terminations").Inc();
  if (!result.consistent) registry_.counter("txn/inconsistent").Inc();
  registry_.histogram("txn/latency_us").Record(result.latency());
  registry_.histogram("txn/messages").Record(result.messages);
  // Windowed view of the same latencies, bucketed by completion time, so
  // "p95 over the last stretch of virtual time" is answerable.
  registry_.series("txn/latency_us").Record(clock_->now(), result.latency());
  if (blocking_ != nullptr) blocking_->Finalize(clock_->now());
  registry_.histogram("txn/commit_path_latency_us")
      .Record(result.commit_path_latency());
  if (result.used_termination) {
    registry_.histogram("txn/termination_latency_us")
        .Record(result.termination_latency());
  }
  return result;
}

TxnResult CommitSystem::RunToCompletion(TransactionId txn) {
  Status launched = Launch(txn);
  if (!launched.ok()) {
    NBCP_LOG(kWarn) << "launch failed: " << launched.ToString();
  }
  return AwaitQuiescence(txn);
}

std::string CommitSystem::MetricsSnapshotJson(int indent) const {
  Json root = Json::Object();
  root["protocol"] = Json(spec_->name());
  root["num_sites"] = Json(config_.num_sites);
  root["seed"] = Json(config_.seed);
  root["virtual_time_us"] = Json(clock_->now());
  root["backend"] = Json(sim_ != nullptr ? "sim" : "threaded");

  if (sim_ != nullptr) {
    Json sim = Json::Object();
    sim["events_executed"] = Json(sim_->stats().events_executed);
    sim["events_scheduled"] = Json(sim_->stats().events_scheduled);
    sim["max_queue_depth"] = Json(sim_->stats().max_queue_depth);
    root["sim"] = sim;
  }

  const NetworkStats net = transport_->StatsSnapshot();
  Json network = Json::Object();
  network["messages_sent"] = Json(net.messages_sent);
  network["messages_delivered"] = Json(net.messages_delivered);
  network["messages_dropped"] = Json(net.messages_dropped);
  network["bytes_sent"] = Json(net.bytes_sent);
  root["network"] = network;

  root["metrics"] = registry_.ToJson();
  return root.Dump(indent);
}

std::string CommitSystem::MetricsPrometheusText(SimTime window) const {
  std::map<std::string, std::string> labels = {
      {"protocol", spec_->name()},
      {"sites", std::to_string(config_.num_sites)},
      {"seed", std::to_string(config_.seed)},
  };
  return ExportPrometheusText(registry_, labels, clock_->now(), window);
}

std::string CommitSystem::TraceJsonl() const {
  if (trace_ == nullptr || !trace_->store()) return "";
  TraceMeta meta{spec_->name(), config_.num_sites, trace_->dropped()};
  return ExportTraceJsonLines(*trace_, &spans_, meta);
}

std::string CommitSystem::TraceChromeJson() const {
  if (trace_ == nullptr || !trace_->store()) return "";
  TraceMeta meta{spec_->name(), config_.num_sites, trace_->dropped()};
  std::vector<TraceEvent> events(trace_->events().begin(),
                                 trace_->events().end());
  return ExportChromeTrace(events, spans_.spans(), meta);
}

Status CommitSystem::ExportTraceJsonl(const std::string& path) const {
  if (trace_ == nullptr || !trace_->store()) {
    return Status::FailedPrecondition("tracing is off (SystemConfig::trace)");
  }
  return WriteFile(path, TraceJsonl());
}

Status CommitSystem::ExportTraceChrome(const std::string& path) const {
  if (trace_ == nullptr || !trace_->store()) {
    return Status::FailedPrecondition("tracing is off (SystemConfig::trace)");
  }
  return WriteFile(path, TraceChromeJson());
}

}  // namespace nbcp
