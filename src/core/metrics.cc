#include "core/metrics.h"

#include <sstream>

namespace nbcp {

std::string TxnResult::ToString() const {
  std::ostringstream out;
  out << "txn " << txn << ": " << nbcp::ToString(outcome)
      << (consistent ? "" : " INCONSISTENT") << (blocked ? " BLOCKED" : "")
      << (used_termination ? " via-termination" : "") << " latency="
      << latency() << "us messages=" << messages << " sites=[";
  bool first = true;
  for (const auto& [site, outcome_i] : site_outcomes) {
    if (!first) out << ", ";
    out << site << ":" << nbcp::ToString(outcome_i);
    first = false;
  }
  out << "]";
  return out.str();
}

void SystemMetrics::Record(const TxnResult& result) {
  ++runs;
  if (result.outcome == Outcome::kCommitted) ++committed;
  if (result.outcome == Outcome::kAborted) ++aborted;
  if (result.blocked) ++blocked;
  if (!result.consistent) ++inconsistent;
  if (result.used_termination) ++terminations;
  total_messages += result.messages;
  total_latency += result.latency();
  commit_path_latency += result.commit_path_latency();
  termination_latency += result.termination_latency();
}

std::string SystemMetrics::ToString() const {
  std::ostringstream out;
  out << "runs=" << runs << " committed=" << committed
      << " aborted=" << aborted << " blocked=" << blocked
      << " inconsistent=" << inconsistent << " terminations=" << terminations
      << " mean_latency=" << mean_latency() << "us (commit-path "
      << mean_commit_path_latency() << "us, termination "
      << mean_termination_latency() << "us over " << terminations
      << " runs) mean_messages=" << mean_messages();
  return out.str();
}

}  // namespace nbcp
