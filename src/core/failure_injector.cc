#include "core/failure_injector.h"

#include "common/logging.h"
#include "obs/metrics_registry.h"

namespace nbcp {

void FailureInjector::CrashNow(SiteId site) {
  if (!network_->IsSiteUp(site)) return;
  NBCP_LOG(kInfo) << "injector: crashing site " << site << " at t="
                  << sim_->now();
  ++crash_count_;
  if (metrics_ != nullptr) metrics_->counter("fault/crashes").Inc();
  network_->SetSiteDown(site);
  Participant* p = participant_(site);
  if (p != nullptr) p->Crash();
  detector_->NotifyCrash(site);
}

void FailureInjector::RecoverNow(SiteId site) {
  if (network_->IsSiteUp(site)) return;
  NBCP_LOG(kInfo) << "injector: recovering site " << site << " at t="
                  << sim_->now();
  if (metrics_ != nullptr) metrics_->counter("fault/recoveries").Inc();
  network_->SetSiteUp(site);
  Participant* p = participant_(site);
  if (p != nullptr) p->Recover();
  detector_->NotifyRecovery(site);
}

EventId FailureInjector::ScheduleCrash(SiteId site, SimTime at) {
  return sim_->ScheduleAt(at, [this, site]() { CrashNow(site); });
}

EventId FailureInjector::ScheduleRecovery(SiteId site, SimTime at) {
  return sim_->ScheduleAt(at, [this, site]() { RecoverNow(site); });
}

void FailureInjector::Partition(const std::vector<SiteId>& group_a,
                                const std::vector<SiteId>& group_b) {
  NBCP_LOG(kInfo) << "injector: partitioning network at t=" << sim_->now();
  if (metrics_ != nullptr) metrics_->counter("fault/partitions").Inc();
  for (SiteId a : group_a) {
    for (SiteId b : group_b) {
      network_->CutLink(a, b);
      network_->CutLink(b, a);
      detector_->SuspectLocally(a, b);
      detector_->SuspectLocally(b, a);
    }
  }
}

void FailureInjector::HealPartition(const std::vector<SiteId>& group_a,
                                    const std::vector<SiteId>& group_b) {
  NBCP_LOG(kInfo) << "injector: healing partition at t=" << sim_->now();
  if (metrics_ != nullptr) metrics_->counter("fault/heals").Inc();
  for (SiteId a : group_a) {
    for (SiteId b : group_b) {
      network_->RestoreLink(a, b);
      network_->RestoreLink(b, a);
      detector_->UnsuspectLocally(a, b);
      detector_->UnsuspectLocally(b, a);
    }
  }
}

void FailureInjector::CrashDuringBroadcast(SiteId site, TransactionId txn,
                                           std::string msg_type,
                                           size_t allow) {
  Participant* p = participant_(site);
  if (p == nullptr) return;
  p->ArmSendTrap(txn, std::move(msg_type), allow,
                 [this, site]() { CrashNow(site); });
}

}  // namespace nbcp
