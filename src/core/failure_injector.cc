#include "core/failure_injector.h"

#include "common/logging.h"
#include "obs/metrics_registry.h"

namespace nbcp {

void FailureInjector::CrashNow(SiteId site) {
  if (!network_->IsSiteUp(site)) return;
  NBCP_LOG(kInfo) << "injector: crashing site " << site << " at t="
                  << clock_->now();
  ++crash_count_;
  if (metrics_ != nullptr) metrics_->counter("fault/crashes").Inc();
  network_->SetSiteDown(site);
  Participant* p = participant_(site);
  // Wipe volatile state in the site's own execution context: on the
  // threaded backend the worker may be mid-handler right now.
  if (p != nullptr) network_->PostSync(site, [p]() { p->Crash(); });
  detector_->NotifyCrash(site);
}

void FailureInjector::RecoverNow(SiteId site) {
  if (network_->IsSiteUp(site)) return;
  NBCP_LOG(kInfo) << "injector: recovering site " << site << " at t="
                  << clock_->now();
  if (metrics_ != nullptr) metrics_->counter("fault/recoveries").Inc();
  network_->SetSiteUp(site);
  Participant* p = participant_(site);
  if (p != nullptr) network_->PostSync(site, [p]() { p->Recover(); });
  detector_->NotifyRecovery(site);
}

EventId FailureInjector::ScheduleCrash(SiteId site, SimTime at) {
  EventLabel label;
  label.cls = EventClass::kCrash;
  label.site = site;
  return clock_->ScheduleLabeledAt(at, std::move(label),
                                   [this, site]() { CrashNow(site); });
}

EventId FailureInjector::ScheduleRecovery(SiteId site, SimTime at) {
  EventLabel label;
  label.cls = EventClass::kCrash;  // Same family: an injected fault event.
  label.site = site;
  return clock_->ScheduleLabeledAt(at, std::move(label),
                                   [this, site]() { RecoverNow(site); });
}

void FailureInjector::Partition(const std::vector<SiteId>& group_a,
                                const std::vector<SiteId>& group_b) {
  NBCP_LOG(kInfo) << "injector: partitioning network at t=" << clock_->now();
  if (metrics_ != nullptr) metrics_->counter("fault/partitions").Inc();
  for (SiteId a : group_a) {
    for (SiteId b : group_b) {
      network_->CutLink(a, b);
      network_->CutLink(b, a);
      detector_->SuspectLocally(a, b);
      detector_->SuspectLocally(b, a);
    }
  }
}

void FailureInjector::HealPartition(const std::vector<SiteId>& group_a,
                                    const std::vector<SiteId>& group_b) {
  NBCP_LOG(kInfo) << "injector: healing partition at t=" << clock_->now();
  if (metrics_ != nullptr) metrics_->counter("fault/heals").Inc();
  for (SiteId a : group_a) {
    for (SiteId b : group_b) {
      network_->RestoreLink(a, b);
      network_->RestoreLink(b, a);
      detector_->UnsuspectLocally(a, b);
      detector_->UnsuspectLocally(b, a);
    }
  }
}

void FailureInjector::CrashDuringBroadcast(SiteId site, TransactionId txn,
                                           std::string msg_type,
                                           size_t allow) {
  Participant* p = participant_(site);
  if (p == nullptr) return;
  // Arm in the site's own execution context: the worker thread owns the
  // participant's trap table on the threaded backend.
  network_->PostSync(site, [this, p, txn, site,
                            msg_type = std::move(msg_type), allow]() mutable {
    p->ArmSendTrap(txn, std::move(msg_type), allow,
                   [this, site]() { CrashNow(site); });
  });
}

}  // namespace nbcp
