#include "core/participant.h"

#include <utility>

#include "common/logging.h"
#include "election/bully.h"
#include "election/ring.h"
#include "obs/metrics_registry.h"
#include "obs/span.h"

namespace nbcp {

Participant::Participant(SiteId site, const ProtocolSpec* spec, size_t n,
                         Clock* clock, Transport* network,
                         FailureDetector* detector,
                         const ConcurrencyAnalysis* analysis,
                         std::function<SiteId(SiteId)> analysis_site_map,
                         ParticipantConfig config)
    : site_(site),
      spec_(spec),
      n_(n),
      clock_(clock),
      network_(network),
      detector_(detector),
      analysis_(analysis),
      analysis_site_map_(std::move(analysis_site_map)),
      config_(config) {
  if (!analysis_site_map_) {
    analysis_site_map_ = [](SiteId s) { return s; };
  }
  // Build the volatile components.
  Recover();
  crashed_ = false;
}

std::vector<SiteId> Participant::AliveSites() const {
  std::vector<SiteId> out;
  for (SiteId s = 1; s <= n_; ++s) {
    if (!detector_->IsSuspectedBy(site_, s)) out.push_back(s);
  }
  return out;
}

Status Participant::Attach() {
  Status s = network_->RegisterSite(
      site_, [this](const Message& m) { OnNetMessage(m); });
  if (!s.ok()) return s;
  detector_->Subscribe(
      site_, [this](SiteId subject, bool up) { OnSiteStatus(subject, up); });
  return Status::OK();
}

void Participant::SetVote(TransactionId txn, bool vote) {
  Record(txn).preset_vote = vote;
}

Status Participant::SubmitLocalOps(TransactionId txn,
                                   const std::vector<KvOp>& ops) {
  if (crashed_) return Status::Unavailable("site is down");
  TxnRecord& record = Record(txn);
  if (record.local) return Status::AlreadyExists("ops already submitted");
  record.local =
      std::make_unique<LocalTransaction>(txn, kv_.get(), locks_.get());
  Status s = record.local->Execute(ops);
  if (!s.ok()) {
    // Execution failed (e.g. lock conflict): the site will vote no.
    record.preset_vote = false;
    record.local.reset();
  }
  return s;
}

void Participant::set_obs(MetricsRegistry* metrics, SpanCollector* spans) {
  metrics_ = metrics;
  spans_ = spans;
  if (election_) election_->set_metrics(metrics_);
  if (termination_) termination_->set_metrics(metrics_);
}

Status Participant::StartProtocol(TransactionId txn) {
  if (crashed_) return Status::Unavailable("site is down");
  Trace(txn, TraceEventType::kProtocolStart);
  if (spans_ != nullptr) {
    spans_->Begin(txn, site_, CommitPhase::kVoteRequest, clock_->now());
  }
  Status started = engine_->StartTransaction(txn);
  if (!started.ok()) return started;

  // A transaction launched while some participant is already known to be
  // down cannot complete normally (every site takes part in every
  // transaction); hand it to the termination protocol right away, which
  // aborts it from the initial states. HandleFailure only covers
  // transactions that existed when the failure was reported.
  for (SiteId s = 1; s <= n_; ++s) {
    if (s == site_ || !detector_->IsSuspectedBy(site_, s)) continue;
    if (spec_->paradigm() == Paradigm::kDecentralized) {
      termination_->Initiate(txn);
    } else if (site_ == 1) {
      termination_->InitiateAsBackup(txn);
    }
    break;
  }
  return Status::OK();
}

void Participant::Trace(TransactionId txn, TraceEventType type,
                        std::string detail) const {
  if (trace_ != nullptr) {
    trace_->Record(clock_->now(), site_, txn, type, std::move(detail));
  }
}

bool Participant::VoteFor(TransactionId txn) {
  TxnRecord& record = Record(txn);
  if (record.local) {
    if (!record.local->executed()) return false;
    // Voting yes is an unconditional promise: force the staged writes to
    // stable storage first.
    return record.local->Prepare().ok();
  }
  return record.preset_vote.value_or(true);
}

void Participant::OnVoteCast(TransactionId txn, bool yes) {
  TxnRecord& record = Record(txn);
  if (!record.start_logged) {
    dt_log_.Append(txn, DtLogEvent::kStart);
    record.start_logged = true;
  }
  if (!record.vote_logged) {
    dt_log_.Append(txn, yes ? DtLogEvent::kVoteYes : DtLogEvent::kVoteNo);
    record.vote_logged = true;
    Trace(txn, TraceEventType::kVoteCast, yes ? "yes" : "no");
    if (spans_ != nullptr) {
      spans_->Begin(txn, site_, CommitPhase::kVote, clock_->now());
    }
  }
}

void Participant::OnStateChange(TransactionId txn, const LocalState& state) {
  TxnRecord& record = Record(txn);
  if (!record.start_logged) {
    dt_log_.Append(txn, DtLogEvent::kStart);
    record.start_logged = true;
  }
  if (state.kind == StateKind::kBuffer && !dt_log_.WasPrepared(txn)) {
    dt_log_.Append(txn, DtLogEvent::kPrepared);
  }
  if (spans_ != nullptr && (state.kind == StateKind::kBuffer ||
                            state.kind == StateKind::kAbortBuffer)) {
    spans_->Begin(txn, site_, CommitPhase::kPrecommit, clock_->now());
  }
  Trace(txn, TraceEventType::kStateChange, state.name);
}

void Participant::OnDecision(TransactionId txn, Outcome outcome) {
  TxnRecord& record = Record(txn);
  record.outcome = outcome;
  record.decision_time = clock_->now();
  record.blocked = false;
  if (!dt_log_.OutcomeOf(txn).has_value()) {
    dt_log_.Append(txn, outcome == Outcome::kCommitted ? DtLogEvent::kCommit
                                                       : DtLogEvent::kAbort);
  }
  Trace(txn, TraceEventType::kDecision, ToString(outcome));
  if (spans_ != nullptr) spans_->MarkDecision(txn, site_, clock_->now());
  ApplyOutcomeToDb(txn, outcome);
}

void Participant::ApplyOutcomeToDb(TransactionId txn, Outcome outcome) {
  TxnRecord& record = Record(txn);
  if (record.local) {
    if (outcome == Outcome::kCommitted) {
      // 1PC-style flows may decide commit without a vote phase; the staged
      // writes must still be made durable before applying.
      Status prep = record.local->Prepare();
      if (!prep.ok()) {
        NBCP_LOG(kWarn) << "site " << site_ << " txn " << txn
                        << " prepare-at-commit failed: " << prep.ToString();
      }
      (void)record.local->Commit();
    } else {
      (void)record.local->Abort();
    }
    record.local.reset();
    return;
  }
  if (kv_->IsActive(txn)) {
    // Re-staged after recovery (no LocalTransaction object survives).
    if (outcome == Outcome::kCommitted) {
      (void)kv_->Commit(txn);
    } else {
      (void)kv_->Abort(txn);
    }
    locks_->Release(txn);
  }
}

void Participant::ArmSendTrap(TransactionId txn, std::string msg_type,
                              size_t allow, std::function<void()> on_trip) {
  send_traps_[txn] =
      SendTrap{std::move(msg_type), allow, 0, std::move(on_trip), false};
}

void Participant::OnNetMessage(const Message& message) {
  if (crashed_) return;
  const std::string& type = message.type;
  if (BullyElection::OwnsMessage(type) || RingElection::OwnsMessage(type)) {
    election_->OnMessage(message);
    return;
  }
  if (TerminationProtocol::OwnsMessage(type)) {
    termination_->OnMessage(message);
    return;
  }
  if (RecoveryManager::OwnsMessage(type)) {
    recovery_->OnMessage(message);
    return;
  }
  if (spans_ != nullptr && message.txn != kNoTransaction &&
      !engine_->HasTransaction(message.txn)) {
    // First protocol message about this transaction: the site's
    // vote-request phase starts when the request reaches it.
    spans_->Begin(message.txn, site_, CommitPhase::kVoteRequest, clock_->now());
  }
  engine_->OnMessage(message);
}

void Participant::HandleFailure(SiteId failed) {
  termination_->OnSiteFailure(failed);
  for (TransactionId txn : engine_->UndecidedTransactions()) {
    if (spec_->paradigm() == Paradigm::kCentralSite) {
      if (failed == 1) {
        // The coordinator died: the slaves terminate via election.
        termination_->Initiate(txn);
      } else if (site_ == 1) {
        // A slave died while we (the coordinator) direct the protocol: we
        // are the natural backup, no election needed.
        termination_->InitiateAsBackup(txn);
      }
    } else {
      termination_->Initiate(txn);
    }
  }
}

void Participant::HandleRecoveryOf(SiteId recovered) {
  (void)recovered;
  // A site came back: it may know (or have unilaterally resolved) the
  // outcome of transactions we are blocked on — rerun termination.
  for (TransactionId txn : engine_->UndecidedTransactions()) {
    if (IsBlocked(txn)) termination_->Initiate(txn);
  }
}

void Participant::OnSiteStatus(SiteId subject, bool up) {
  if (crashed_) return;
  if (up) {
    HandleRecoveryOf(subject);
  } else {
    HandleFailure(subject);
  }
}

Outcome Participant::OutcomeOf(TransactionId txn) const {
  auto it = records_.find(txn);
  if (it != records_.end() && it->second.outcome.has_value()) {
    return *it->second.outcome;
  }
  auto logged = dt_log_.OutcomeOf(txn);
  if (logged.has_value()) return *logged;
  if (engine_) return engine_->OutcomeOf(txn);
  return Outcome::kUndecided;
}

bool Participant::KnowsTransaction(TransactionId txn) const {
  if (dt_log_.Knows(txn)) return true;
  if (engine_ && engine_->HasTransaction(txn)) return true;
  auto it = records_.find(txn);
  return it != records_.end() && it->second.outcome.has_value();
}

bool Participant::IsBlocked(TransactionId txn) const {
  if (OutcomeOf(txn) != Outcome::kUndecided) return false;
  auto it = records_.find(txn);
  if (it != records_.end() && it->second.blocked) return true;
  return termination_ && termination_->IsBlocked(txn);
}

bool Participant::UsedTermination(TransactionId txn) const {
  auto it = records_.find(txn);
  return it != records_.end() && it->second.via_termination;
}

std::optional<SimTime> Participant::DecisionTime(TransactionId txn) const {
  auto it = records_.find(txn);
  if (it == records_.end() || !it->second.outcome.has_value()) {
    return std::nullopt;
  }
  return it->second.decision_time;
}

StateKind Participant::CurrentKind(TransactionId txn) const {
  if (crashed_ || !engine_) return StateKind::kInitial;
  return engine_->CurrentKind(txn);
}

void Participant::Crash() {
  Trace(kNoTransaction, TraceEventType::kCrash);
  crashed_ = true;
  engine_.reset();
  kv_.reset();
  locks_.reset();
  election_.reset();
  termination_.reset();
  recovery_.reset();
  send_traps_.clear();
  for (auto& [txn, record] : records_) {
    record.local.reset();  // Points into the destroyed store/locks.
  }
}

void Participant::Recover() {
  if (crashed_) Trace(kNoTransaction, TraceEventType::kRecover);
  crashed_ = false;

  kv_ = std::make_unique<KvStore>(&wal_);
  locks_ = std::make_unique<LockManager>();
  engine_ = std::make_unique<ProtocolEngine>(site_, spec_, n_, network_);

  EngineHooks hooks;
  hooks.vote = [this](TransactionId txn) { return VoteFor(txn); };
  hooks.on_vote_cast = [this](TransactionId txn, bool yes) {
    OnVoteCast(txn, yes);
  };
  hooks.on_state_change = [this](TransactionId txn, const LocalState& s) {
    OnStateChange(txn, s);
  };
  hooks.on_decision = [this](TransactionId txn, Outcome outcome) {
    OnDecision(txn, outcome);
  };
  hooks.send_filter = [this](TransactionId txn, const Message& m,
                             size_t index, size_t total) {
    (void)index;
    (void)total;
    auto it = send_traps_.find(txn);
    if (it == send_traps_.end() || it->second.tripped) return true;
    SendTrap& trap = it->second;
    if (m.type != trap.msg_type) return true;
    if (trap.sent < trap.allow) {
      ++trap.sent;
      return true;
    }
    trap.tripped = true;
    if (trap.on_trip) clock_->ScheduleTimer(0, site_, trap.on_trip);
    return false;
  };
  engine_->set_hooks(std::move(hooks));

  auto alive = [this]() { return AliveSites(); };
  auto on_elected = [this](TransactionId tag, SiteId leader) {
    Trace(tag, TraceEventType::kElectionWon, std::to_string(leader));
    if (termination_) termination_->OnElected(tag, leader);
  };
  if (config_.use_ring_election) {
    election_ = std::make_unique<RingElection>(site_, clock_, network_, alive,
                                               on_elected, config_.election);
  } else {
    election_ = std::make_unique<BullyElection>(site_, clock_, network_, alive,
                                                on_elected, config_.election);
  }

  TerminationHooks term_hooks;
  term_hooks.current_state = [this](TransactionId txn) {
    auto state = engine_->CurrentState(txn);
    return state.ok() ? engine_->automaton().FindState(state->name)
                      : engine_->automaton().initial_state();
  };
  term_hooks.analysis_site = analysis_site_map_;
  term_hooks.freeze = [this](TransactionId txn) {
    if (!engine_->IsFrozen(txn)) {
      Trace(txn, TraceEventType::kTerminationStart);
    }
    TxnRecord& record = Record(txn);
    if (!record.termination_start.has_value()) {
      record.termination_start = clock_->now();
      if (spans_ != nullptr) {
        spans_->BeginTermination(txn, site_, clock_->now());
      }
    }
    engine_->Freeze(txn);
  };
  term_hooks.force_kind = [this](TransactionId txn, StateKind kind) {
    return engine_->ForceToKind(txn, kind);
  };
  term_hooks.force_outcome = [this](TransactionId txn, Outcome outcome) {
    return engine_->ForceOutcome(txn, outcome);
  };
  term_hooks.is_decided = [this](TransactionId txn) {
    return engine_->OutcomeOf(txn) != Outcome::kUndecided;
  };
  term_hooks.alive_sites = alive;
  term_hooks.on_terminated = [this](TransactionId txn, Outcome outcome) {
    TxnRecord& record = Record(txn);
    record.via_termination = true;
    record.blocked = false;
    Trace(txn, TraceEventType::kTerminationDecide, ToString(outcome));
    if (spans_ != nullptr) spans_->EndTermination(txn, site_, clock_->now());
  };
  term_hooks.on_blocked = [this](TransactionId txn) {
    Record(txn).blocked = true;
    Trace(txn, TraceEventType::kBlocked);
  };
  TerminationConfig term_config = config_.termination;
  term_config.num_sites = n_;
  // A protocol with a "prepare to abort" buffer state is a quorum protocol:
  // its termination must be quorum-gated to deliver the partition safety
  // the extra state pays for.
  for (const LocalState& s : spec_->role(spec_->RoleForSite(site_, n_)).states()) {
    if (s.kind == StateKind::kAbortBuffer) term_config.quorum_mode = true;
  }
  termination_ = std::make_unique<TerminationProtocol>(
      site_, clock_, network_, election_.get(), analysis_,
      std::move(term_hooks), term_config);

  RecoveryHooks rec_hooks;
  rec_hooks.alive_sites = alive;
  rec_hooks.apply_outcome = [this](TransactionId txn, Outcome outcome) {
    Status s = engine_->ForceOutcome(txn, outcome);
    if (!s.ok()) {
      NBCP_LOG(kWarn) << "site " << site_ << " recovery of txn " << txn
                      << ": " << s.ToString();
    }
  };
  rec_hooks.lookup_outcome =
      [this](TransactionId txn) -> std::optional<Outcome> {
    auto outcome = dt_log_.OutcomeOf(txn);
    if (outcome.has_value()) return outcome;
    Outcome engine_outcome = engine_->OutcomeOf(txn);
    if (engine_outcome != Outcome::kUndecided) return engine_outcome;
    return std::nullopt;
  };
  rec_hooks.on_unresolved = [this](TransactionId txn) {
    Record(txn).blocked = true;
    // Nobody answered the outcome queries. Fall back to the termination
    // protocol: if every site has recovered by now (total failure), the
    // backup's complete view of the durable states resolves the
    // transaction; otherwise the session blocks until more sites return.
    termination_->Initiate(txn);
  };
  recovery_ = std::make_unique<RecoveryManager>(
      site_, clock_, network_, &dt_log_, std::move(rec_hooks),
      config_.recovery);

  // Rebuild database state from the WAL: committed transactions reapplied,
  // in-doubt ones re-staged prepared.
  auto in_doubt_kv = kv_->RecoverFromWal();
  if (!in_doubt_kv.ok()) {
    NBCP_LOG(kError) << "site " << site_
                     << " WAL recovery failed: "
                     << in_doubt_kv.status().ToString();
  }

  // Rebuild protocol positions from the DT log so this site answers
  // termination state queries consistently.
  const Automaton& automaton = engine_->automaton();
  bool has_buffer = false;
  for (const LocalState& s : automaton.states()) {
    if (s.kind == StateKind::kBuffer) has_buffer = true;
  }
  for (TransactionId txn : dt_log_.InDoubt()) {
    StateKind kind = dt_log_.WasPrepared(txn) && has_buffer
                         ? StateKind::kBuffer
                         : StateKind::kWait;
    (void)engine_->ForceToKind(txn, kind);
  }
  for (const DtLogRecord& record : dt_log_.records()) {
    auto outcome = dt_log_.OutcomeOf(record.txn);
    if (outcome.has_value()) {
      (void)engine_->ForceOutcome(record.txn, *outcome);
    }
  }

  // Observability attachments do not survive the volatile components.
  election_->set_metrics(metrics_);
  termination_->set_metrics(metrics_);

  // Resolve in-doubt transactions with the distributed recovery protocol.
  recovery_->StartRecovery();
}

std::optional<SimTime> Participant::TerminationStartTime(
    TransactionId txn) const {
  auto it = records_.find(txn);
  if (it == records_.end()) return std::nullopt;
  return it->second.termination_start;
}

}  // namespace nbcp
