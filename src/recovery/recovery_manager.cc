#include "recovery/recovery_manager.h"

#include "common/logging.h"

namespace nbcp {
namespace {
const char kQuery[] = "rec:query";
const char kOutcomeRep[] = "rec:outcome";
}  // namespace

RecoveryManager::RecoveryManager(SiteId self, Clock* clock,
                                 Transport* network, DtLog* log,
                                 RecoveryHooks hooks, RecoveryConfig config)
    : self_(self),
      clock_(clock),
      network_(network),
      log_(log),
      hooks_(std::move(hooks)),
      config_(config) {}

bool RecoveryManager::OwnsMessage(const std::string& type) {
  return type.rfind("rec:", 0) == 0;
}

void RecoveryManager::StartRecovery() {
  // Unvoted transactions: unilateral abort on recovery.
  for (TransactionId txn : log_->UnvotedUndecided()) {
    hooks_.apply_outcome(txn, Outcome::kAborted);
  }
  // In-doubt transactions: ask the operational sites.
  for (TransactionId txn : log_->InDoubt()) {
    auto [it, inserted] = pending_.try_emplace(txn);
    if (!inserted && !it->second.resolved) continue;
    it->second = Pending{};
    QueryOutcome(txn);
  }
}

void RecoveryManager::QueryOutcome(TransactionId txn) {
  Pending& pending = pending_[txn];
  if (pending.resolved) return;
  if (pending.attempts >= config_.max_attempts) {
    NBCP_LOG(kDebug) << "site " << self_ << " txn " << txn
                     << " unresolved after recovery queries";
    if (hooks_.on_unresolved) hooks_.on_unresolved(txn);
    return;
  }
  ++pending.attempts;

  bool asked_anyone = false;
  for (SiteId site : hooks_.alive_sites()) {
    if (site == self_) continue;
    Message m;
    m.type = kQuery;
    m.from = self_;
    m.to = site;
    m.txn = txn;
    (void)network_->Send(std::move(m));
    asked_anyone = true;
  }
  (void)asked_anyone;  // Even with nobody to ask, retry: sites may recover.
  pending.timer = clock_->ScheduleTimer(
      config_.query_timeout, self_,
      [this, txn, token = std::weak_ptr<char>(alive_token_)]() {
        if (token.expired()) return;
        auto it = pending_.find(txn);
        if (it == pending_.end() || it->second.resolved) return;
        QueryOutcome(txn);
      });
}

void RecoveryManager::Resolve(TransactionId txn, Outcome outcome) {
  auto it = pending_.find(txn);
  if (it == pending_.end() || it->second.resolved) return;
  it->second.resolved = true;
  if (it->second.timer != 0) clock_->Cancel(it->second.timer);
  NBCP_LOG(kDebug) << "site " << self_ << " recovered txn " << txn << " as "
                   << ToString(outcome);
  hooks_.apply_outcome(txn, outcome);
}

void RecoveryManager::OnMessage(const Message& message) {
  if (message.type == kQuery) {
    std::optional<Outcome> outcome = hooks_.lookup_outcome(message.txn);
    Message reply;
    reply.type = kOutcomeRep;
    reply.from = self_;
    reply.to = message.from;
    reply.txn = message.txn;
    if (!outcome.has_value() || *outcome == Outcome::kUndecided) {
      reply.payload = "unknown";
    } else {
      reply.payload =
          *outcome == Outcome::kCommitted ? "commit" : "abort";
    }
    (void)network_->Send(std::move(reply));
    return;
  }
  if (message.type == kOutcomeRep) {
    if (message.payload == "commit") {
      Resolve(message.txn, Outcome::kCommitted);
    } else if (message.payload == "abort") {
      Resolve(message.txn, Outcome::kAborted);
    }
    // "unknown" answers are ignored; the retry timer keeps asking.
    return;
  }
}

bool RecoveryManager::IsResolving(TransactionId txn) const {
  auto it = pending_.find(txn);
  return it != pending_.end() && !it->second.resolved;
}

}  // namespace nbcp
