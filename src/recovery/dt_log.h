#ifndef NBCP_RECOVERY_DT_LOG_H_
#define NBCP_RECOVERY_DT_LOG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace nbcp {

/// Events recorded in the distributed-transaction log.
enum class DtLogEvent : uint8_t {
  kStart = 0,   ///< Site learned of the transaction.
  kVoteYes,     ///< Site voted yes (written *before* the vote is sent).
  kVoteNo,      ///< Site voted no.
  kPrepared,    ///< Site entered the buffer ("prepare to commit") state.
  kCommit,      ///< Final commit.
  kAbort,       ///< Final abort.
};

std::string ToString(DtLogEvent event);

/// One DT-log record.
struct DtLogRecord {
  TransactionId txn = kNoTransaction;
  DtLogEvent event = DtLogEvent::kStart;
};

/// Per-site durable log of commit-protocol progress, consulted by the
/// recovery protocol. Survives simulated crashes (it models stable
/// storage); all volatile protocol state is reconstructed from it.
class DtLog {
 public:
  DtLog() = default;
  DtLog(const DtLog&) = delete;
  DtLog& operator=(const DtLog&) = delete;

  void Append(TransactionId txn, DtLogEvent event);

  const std::vector<DtLogRecord>& records() const { return records_; }

  /// Final outcome of `txn` if logged.
  std::optional<Outcome> OutcomeOf(TransactionId txn) const;

  /// True if a yes vote (or prepared marker) was logged for `txn`.
  bool VotedYes(TransactionId txn) const;

  /// True if a kPrepared record (buffer-state entry) was logged for `txn`.
  bool WasPrepared(TransactionId txn) const;

  /// True if any record mentions `txn`.
  bool Knows(TransactionId txn) const;

  /// Transactions with a yes vote but no final outcome: the site cannot
  /// decide them unilaterally on recovery.
  std::vector<TransactionId> InDoubt() const;

  /// Transactions known but never voted on: aborted unilaterally on
  /// recovery ("failure before the commit point").
  std::vector<TransactionId> UnvotedUndecided() const;

 private:
  struct TxnSummary {
    bool voted_yes = false;
    bool voted_no = false;
    bool prepared = false;
    std::optional<Outcome> outcome;
  };

  std::vector<DtLogRecord> records_;
  std::unordered_map<TransactionId, TxnSummary> summary_;
  std::vector<TransactionId> order_;  ///< First-seen order, for iteration.
};

}  // namespace nbcp

#endif  // NBCP_RECOVERY_DT_LOG_H_
