#ifndef NBCP_RECOVERY_RECOVERY_MANAGER_H_
#define NBCP_RECOVERY_RECOVERY_MANAGER_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "runtime/clock.h"
#include "recovery/dt_log.h"
#include "runtime/transport.h"

namespace nbcp {

/// Callbacks wiring a RecoveryManager into its participant.
struct RecoveryHooks {
  /// Operational sites per the failure detector, ascending.
  std::function<std::vector<SiteId>()> alive_sites;

  /// Applies a resolved outcome locally (engine, KV store, DT log).
  std::function<void(TransactionId, Outcome)> apply_outcome;

  /// This site's answer to another site's outcome query (from its DT log).
  std::function<std::optional<Outcome>(TransactionId)> lookup_outcome;

  /// Invoked when an in-doubt transaction stays unresolved after all
  /// attempts (e.g. total failure with no informed site back yet).
  std::function<void(TransactionId)> on_unresolved;
};

/// Configuration for the recovery protocol.
struct RecoveryConfig {
  SimTime query_timeout = 20000;  ///< Per attempt, simulated microseconds.
  int max_attempts = 5;
};

/// The paper's recovery protocol: "invoked by a crashed site to resume
/// transaction processing upon recovery."
///
/// On restart the site classifies each transaction from its DT log:
///  * outcome logged               -> nothing to do (KV replay handles it);
///  * never voted                  -> abort unilaterally ("failure before
///                                    the commit point");
///  * voted yes, no outcome logged -> in doubt: query the operational sites
///                                    ("rec:query"); adopt the first
///                                    decisive answer.
///
/// Message types: "rec:query", "rec:outcome" (payload commit/abort/unknown).
class RecoveryManager {
 public:
  RecoveryManager(SiteId self, Clock* clock, Transport* network, DtLog* log,
                  RecoveryHooks hooks, RecoveryConfig config = {});

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  /// Runs the recovery protocol for every unresolved transaction in the
  /// DT log. Call after volatile state has been rebuilt.
  void StartRecovery();

  /// Feeds a "rec:*" message (both the server side answering queries and
  /// the client side consuming answers).
  void OnMessage(const Message& message);

  /// True while `txn` is being resolved.
  bool IsResolving(TransactionId txn) const;

  static bool OwnsMessage(const std::string& type);

 private:
  struct Pending {
    int attempts = 0;
    EventId timer = 0;
    bool resolved = false;
  };

  void QueryOutcome(TransactionId txn);
  void Resolve(TransactionId txn, Outcome outcome);

  SiteId self_;
  Clock* clock_;
  Transport* network_;
  DtLog* log_;
  RecoveryHooks hooks_;
  RecoveryConfig config_;
  std::unordered_map<TransactionId, Pending> pending_;

  /// Liveness token: retry timers hold a weak reference and become no-ops
  /// once this object is destroyed (e.g. its site crashed again).
  std::shared_ptr<char> alive_token_ = std::make_shared<char>(0);
};

}  // namespace nbcp

#endif  // NBCP_RECOVERY_RECOVERY_MANAGER_H_
