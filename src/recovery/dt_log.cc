#include "recovery/dt_log.h"

namespace nbcp {

std::string ToString(DtLogEvent event) {
  switch (event) {
    case DtLogEvent::kStart:
      return "START";
    case DtLogEvent::kVoteYes:
      return "VOTE-YES";
    case DtLogEvent::kVoteNo:
      return "VOTE-NO";
    case DtLogEvent::kPrepared:
      return "PREPARED";
    case DtLogEvent::kCommit:
      return "COMMIT";
    case DtLogEvent::kAbort:
      return "ABORT";
  }
  return "UNKNOWN";
}

void DtLog::Append(TransactionId txn, DtLogEvent event) {
  records_.push_back(DtLogRecord{txn, event});
  auto [it, inserted] = summary_.try_emplace(txn);
  if (inserted) order_.push_back(txn);
  switch (event) {
    case DtLogEvent::kStart:
      break;
    case DtLogEvent::kVoteYes:
      it->second.voted_yes = true;
      break;
    case DtLogEvent::kPrepared:
      it->second.voted_yes = true;
      it->second.prepared = true;
      break;
    case DtLogEvent::kVoteNo:
      it->second.voted_no = true;
      break;
    case DtLogEvent::kCommit:
      it->second.outcome = Outcome::kCommitted;
      break;
    case DtLogEvent::kAbort:
      it->second.outcome = Outcome::kAborted;
      break;
  }
}

std::optional<Outcome> DtLog::OutcomeOf(TransactionId txn) const {
  auto it = summary_.find(txn);
  if (it == summary_.end()) return std::nullopt;
  return it->second.outcome;
}

bool DtLog::VotedYes(TransactionId txn) const {
  auto it = summary_.find(txn);
  return it != summary_.end() && it->second.voted_yes;
}

bool DtLog::WasPrepared(TransactionId txn) const {
  auto it = summary_.find(txn);
  return it != summary_.end() && it->second.prepared;
}

bool DtLog::Knows(TransactionId txn) const {
  return summary_.count(txn) != 0;
}

std::vector<TransactionId> DtLog::InDoubt() const {
  std::vector<TransactionId> out;
  for (TransactionId txn : order_) {
    const TxnSummary& s = summary_.at(txn);
    if (s.voted_yes && !s.outcome.has_value()) out.push_back(txn);
  }
  return out;
}

std::vector<TransactionId> DtLog::UnvotedUndecided() const {
  std::vector<TransactionId> out;
  for (TransactionId txn : order_) {
    const TxnSummary& s = summary_.at(txn);
    if (!s.voted_yes && !s.voted_no && !s.outcome.has_value()) {
      out.push_back(txn);
    }
  }
  return out;
}

}  // namespace nbcp
