#ifndef NBCP_FSA_AUTOMATON_H_
#define NBCP_FSA_AUTOMATON_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "fsa/state.h"
#include "fsa/transition.h"

namespace nbcp {

/// The finite-state automaton modeling one role's execution of a commit
/// protocol (Section "The formal model in brief").
///
/// The automaton is nondeterministic (a slave in q may answer "xact" with
/// either yes or no), its final states are partitioned into commit and abort
/// states, and its state diagram must be acyclic — `Validate()` enforces the
/// structural properties the paper lists for commit-protocol FSAs.
class Automaton {
 public:
  Automaton() = default;

  /// Adds a state and returns its index.
  StateIndex AddState(std::string name, StateKind kind);

  /// Adds a transition. `from`/`to` must be valid indices.
  void AddTransition(Transition t);

  size_t num_states() const { return states_.size(); }
  const LocalState& state(StateIndex i) const { return states_[i]; }
  const std::vector<LocalState>& states() const { return states_; }
  const std::vector<Transition>& transitions() const { return transitions_; }

  /// Indices of transitions leaving `s`.
  std::vector<size_t> TransitionsFrom(StateIndex s) const;

  /// The unique initial state, or kNoState if absent/ambiguous.
  StateIndex initial_state() const;

  /// Index of the state named `name`, or kNoState.
  StateIndex FindState(const std::string& name) const;

  /// True if the transition relation has no cycles.
  bool IsAcyclic() const;

  /// True if `a` and `b` are connected by a transition in either direction.
  /// This is the adjacency relation of the paper's design lemma.
  bool Adjacent(StateIndex a, StateIndex b) const;

  /// States adjacent to `s` (either direction), sorted, without duplicates.
  std::vector<StateIndex> Neighbors(StateIndex s) const;

  /// Length of the longest path from the initial state to any final state;
  /// by the paper's definition this is the number of phases the role
  /// participates in.
  int LongestPathLength() const;

  /// True if the automaton contains a transition that casts a vote
  /// (votes_yes, votes_no, or an or_self_vote_no trigger). Roles that
  /// cannot vote — e.g. 1PC slaves — implicitly assent to commit.
  bool CanVote() const;

  /// Checks the structural properties required of commit-protocol FSAs:
  ///  * exactly one initial state;
  ///  * at least one commit and one abort state;
  ///  * final states have no outgoing transitions;
  ///  * the diagram is acyclic;
  ///  * every state is reachable from the initial state.
  Status Validate() const;

 private:
  std::vector<LocalState> states_;
  std::vector<Transition> transitions_;
};

/// True when the two automata are isomorphic: there is a bijection between
/// their states preserving kind, initial designation and the full transition
/// structure (trigger, sends, vote flags). State *names* are ignored, so a
/// mechanically synthesized protocol can be compared against a handwritten
/// one. Exponential in the worst case; intended for the small commit FSAs.
bool AutomataIsomorphic(const Automaton& a, const Automaton& b);

}  // namespace nbcp

#endif  // NBCP_FSA_AUTOMATON_H_
