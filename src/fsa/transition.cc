#include "fsa/transition.h"

#include <sstream>

namespace nbcp {

std::string ToString(Group group) {
  switch (group) {
    case Group::kNone:
      return "none";
    case Group::kCoordinator:
      return "coordinator";
    case Group::kSlaves:
      return "slaves";
    case Group::kAllPeers:
      return "all";
    case Group::kNextPeer:
      return "next";
    case Group::kPrevPeer:
      return "prev";
  }
  return "unknown";
}

std::string ToString(TriggerKind kind) {
  switch (kind) {
    case TriggerKind::kClientRequest:
      return "request";
    case TriggerKind::kOneFrom:
      return "one-from";
    case TriggerKind::kAllFrom:
      return "all-from";
    case TriggerKind::kAnyFrom:
      return "any-from";
  }
  return "unknown";
}

std::string Transition::Label() const {
  std::ostringstream out;
  switch (trigger.kind) {
    case TriggerKind::kClientRequest:
      out << "xact";
      break;
    case TriggerKind::kOneFrom:
      out << trigger.msg_type;
      break;
    case TriggerKind::kAllFrom:
      out << trigger.msg_type << "[all " << ToString(trigger.group) << "]";
      break;
    case TriggerKind::kAnyFrom:
      if (trigger.or_self_vote_no) out << "(self-no)|";
      out << trigger.msg_type << "[any " << ToString(trigger.group) << "]";
      break;
  }
  out << " / ";
  if (sends.empty()) {
    out << "-";
  } else {
    for (size_t i = 0; i < sends.size(); ++i) {
      if (i > 0) out << ",";
      out << sends[i].msg_type << ">" << ToString(sends[i].to);
    }
  }
  return out.str();
}

}  // namespace nbcp
