#include "fsa/spec_parser.h"

#include <optional>
#include <sstream>
#include <vector>

namespace nbcp {
namespace {

std::optional<StateKind> ParseKind(const std::string& word) {
  if (word == "initial") return StateKind::kInitial;
  if (word == "wait") return StateKind::kWait;
  if (word == "buffer") return StateKind::kBuffer;
  if (word == "abort-buffer") return StateKind::kAbortBuffer;
  if (word == "commit") return StateKind::kCommit;
  if (word == "abort") return StateKind::kAbort;
  return std::nullopt;
}

std::string KindWord(StateKind kind) {
  switch (kind) {
    case StateKind::kInitial:
      return "initial";
    case StateKind::kWait:
      return "wait";
    case StateKind::kBuffer:
      return "buffer";
    case StateKind::kAbortBuffer:
      return "abort-buffer";
    case StateKind::kCommit:
      return "commit";
    case StateKind::kAbort:
      return "abort";
  }
  return "wait";
}

std::optional<Group> ParseGroup(const std::string& word) {
  if (word == "coordinator") return Group::kCoordinator;
  if (word == "slaves") return Group::kSlaves;
  if (word == "all") return Group::kAllPeers;
  if (word == "next") return Group::kNextPeer;
  if (word == "prev") return Group::kPrevPeer;
  return std::nullopt;
}

std::string GroupWord(Group group) {
  switch (group) {
    case Group::kNone:
      return "none";
    case Group::kCoordinator:
      return "coordinator";
    case Group::kSlaves:
      return "slaves";
    case Group::kAllPeers:
      return "all";
    case Group::kNextPeer:
      return "next";
    case Group::kPrevPeer:
      return "prev";
  }
  return "none";
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    if (token[0] == '#') break;  // Comment to end of line.
    tokens.push_back(token);
  }
  return tokens;
}

Status Err(size_t line_number, const std::string& message) {
  return Status::InvalidArgument("line " + std::to_string(line_number) +
                                 ": " + message);
}

}  // namespace

Result<ProtocolSpec> ParseProtocolSpec(const std::string& text) {
  std::optional<ProtocolSpec> spec;
  Automaton current;
  std::string current_role;
  bool in_role = false;

  auto flush_role = [&]() {
    if (in_role && spec.has_value()) {
      spec->AddRole(current_role, std::move(current));
      current = Automaton();
      in_role = false;
    }
  };

  std::istringstream lines(text);
  std::string line;
  size_t line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];

    if (keyword == "protocol") {
      if (spec.has_value()) return Err(line_number, "duplicate 'protocol'");
      if (tokens.size() != 3) {
        return Err(line_number, "expected: protocol <name> <paradigm>");
      }
      Paradigm paradigm;
      if (tokens[2] == "central") {
        paradigm = Paradigm::kCentralSite;
      } else if (tokens[2] == "decentralized") {
        paradigm = Paradigm::kDecentralized;
      } else if (tokens[2] == "linear") {
        paradigm = Paradigm::kLinear;
      } else {
        return Err(line_number, "unknown paradigm '" + tokens[2] + "'");
      }
      spec.emplace(tokens[1], paradigm);
      continue;
    }
    if (!spec.has_value()) {
      return Err(line_number, "'protocol' must come first");
    }

    if (keyword == "role") {
      if (tokens.size() != 2) return Err(line_number, "expected: role <name>");
      flush_role();
      current_role = tokens[1];
      in_role = true;
      continue;
    }
    if (keyword == "end") {
      flush_role();
      continue;
    }
    if (!in_role) return Err(line_number, "statement outside a role");

    if (keyword == "state") {
      if (tokens.size() != 3) {
        return Err(line_number, "expected: state <name> <kind>");
      }
      auto kind = ParseKind(tokens[2]);
      if (!kind.has_value()) {
        return Err(line_number, "unknown state kind '" + tokens[2] + "'");
      }
      if (current.FindState(tokens[1]) != kNoState) {
        return Err(line_number, "duplicate state '" + tokens[1] + "'");
      }
      current.AddState(tokens[1], *kind);
      continue;
    }

    if (keyword == "on") {
      // on <from>: <trigger> / <sends> -> <to> [votes-yes|votes-no]
      size_t i = 1;
      if (i >= tokens.size()) return Err(line_number, "missing source state");
      std::string from_name = tokens[i++];
      if (!from_name.empty() && from_name.back() == ':') {
        from_name.pop_back();
      } else if (i < tokens.size() && tokens[i] == ":") {
        ++i;
      }
      StateIndex from = current.FindState(from_name);
      if (from == kNoState) {
        return Err(line_number, "unknown state '" + from_name + "'");
      }

      Transition t;
      t.from = from;
      if (i >= tokens.size()) return Err(line_number, "missing trigger");
      const std::string& trig = tokens[i];
      if (trig == "request") {
        t.trigger = Trigger{TriggerKind::kClientRequest, "__request",
                            Group::kNone, false};
        ++i;
      } else if (trig == "one" || trig == "all" || trig == "any") {
        if (i + 3 >= tokens.size() || tokens[i + 2] != "from") {
          return Err(line_number,
                     "expected: " + trig + " <msg> from <group>");
        }
        auto group = ParseGroup(tokens[i + 3]);
        if (!group.has_value()) {
          return Err(line_number, "unknown group '" + tokens[i + 3] + "'");
        }
        TriggerKind kind = trig == "one" ? TriggerKind::kOneFrom
                           : trig == "all" ? TriggerKind::kAllFrom
                                           : TriggerKind::kAnyFrom;
        t.trigger = Trigger{kind, tokens[i + 1], *group, false};
        i += 4;
        if (i < tokens.size() && tokens[i] == "or-self-no") {
          if (kind != TriggerKind::kAnyFrom) {
            return Err(line_number, "or-self-no requires an 'any' trigger");
          }
          t.trigger.or_self_vote_no = true;
          ++i;
        }
      } else {
        return Err(line_number, "unknown trigger '" + trig + "'");
      }

      if (i >= tokens.size() || tokens[i] != "/") {
        return Err(line_number, "expected '/' after the trigger");
      }
      ++i;

      if (i < tokens.size() && tokens[i] == "nothing") {
        ++i;
      } else {
        while (i < tokens.size() && tokens[i] == "send") {
          if (i + 3 >= tokens.size() || tokens[i + 2] != "to") {
            return Err(line_number, "expected: send <msg> to <group>");
          }
          auto group = ParseGroup(tokens[i + 3]);
          if (!group.has_value()) {
            return Err(line_number, "unknown group '" + tokens[i + 3] + "'");
          }
          t.sends.push_back(SendSpec{tokens[i + 1], *group});
          i += 4;
        }
      }

      if (i >= tokens.size() || tokens[i] != "->") {
        return Err(line_number, "expected '->' before the target state");
      }
      ++i;
      if (i >= tokens.size()) return Err(line_number, "missing target state");
      StateIndex to = current.FindState(tokens[i]);
      if (to == kNoState) {
        return Err(line_number, "unknown state '" + tokens[i] + "'");
      }
      t.to = to;
      ++i;

      while (i < tokens.size()) {
        if (tokens[i] == "votes-yes") {
          t.votes_yes = true;
        } else if (tokens[i] == "votes-no") {
          t.votes_no = true;
        } else {
          return Err(line_number, "unexpected token '" + tokens[i] + "'");
        }
        ++i;
      }
      current.AddTransition(std::move(t));
      continue;
    }

    return Err(line_number, "unknown keyword '" + keyword + "'");
  }
  flush_role();

  if (!spec.has_value()) return Status::InvalidArgument("empty input");
  Status valid = spec->Validate();
  if (!valid.ok()) return valid;
  return std::move(*spec);
}

std::string SerializeProtocolSpec(const ProtocolSpec& spec) {
  std::ostringstream out;
  std::string paradigm;
  switch (spec.paradigm()) {
    case Paradigm::kCentralSite:
      paradigm = "central";
      break;
    case Paradigm::kDecentralized:
      paradigm = "decentralized";
      break;
    case Paradigm::kLinear:
      paradigm = "linear";
      break;
  }
  out << "protocol " << spec.name() << ' ' << paradigm << "\n";
  for (size_t r = 0; r < spec.num_roles(); ++r) {
    auto role = static_cast<RoleIndex>(r);
    const Automaton& a = spec.role(role);
    out << "role " << spec.role_name(role) << "\n";
    for (size_t s = 0; s < a.num_states(); ++s) {
      const LocalState& state = a.state(static_cast<StateIndex>(s));
      out << "  state " << state.name << ' ' << KindWord(state.kind) << "\n";
    }
    for (const Transition& t : a.transitions()) {
      out << "  on " << a.state(t.from).name << ": ";
      switch (t.trigger.kind) {
        case TriggerKind::kClientRequest:
          out << "request";
          break;
        case TriggerKind::kOneFrom:
          out << "one " << t.trigger.msg_type << " from "
              << GroupWord(t.trigger.group);
          break;
        case TriggerKind::kAllFrom:
          out << "all " << t.trigger.msg_type << " from "
              << GroupWord(t.trigger.group);
          break;
        case TriggerKind::kAnyFrom:
          out << "any " << t.trigger.msg_type << " from "
              << GroupWord(t.trigger.group);
          if (t.trigger.or_self_vote_no) out << " or-self-no";
          break;
      }
      out << " / ";
      if (t.sends.empty()) {
        out << "nothing";
      } else {
        for (size_t i = 0; i < t.sends.size(); ++i) {
          if (i > 0) out << ' ';
          out << "send " << t.sends[i].msg_type << " to "
              << GroupWord(t.sends[i].to);
        }
      }
      out << " -> " << a.state(t.to).name;
      if (t.votes_yes) out << " votes-yes";
      if (t.votes_no) out << " votes-no";
      out << "\n";
    }
  }
  out << "end\n";
  return out.str();
}

}  // namespace nbcp
