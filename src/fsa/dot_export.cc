#include "fsa/dot_export.h"

#include <sstream>

namespace nbcp {
namespace {

std::string NodeAttrs(const LocalState& s) {
  switch (s.kind) {
    case StateKind::kInitial:
      return "shape=circle";
    case StateKind::kWait:
      return "shape=circle";
    case StateKind::kBuffer:
      return "shape=circle style=filled fillcolor=lightgrey";
    case StateKind::kAbortBuffer:
      return "shape=circle style=filled fillcolor=mistyrose";
    case StateKind::kCommit:
      return "shape=doublecircle";
    case StateKind::kAbort:
      return "shape=doubleoctagon";
  }
  return "shape=circle";
}

void EmitBody(std::ostringstream& out, const Automaton& a,
              const std::string& prefix) {
  for (size_t i = 0; i < a.num_states(); ++i) {
    const LocalState& s = a.state(static_cast<StateIndex>(i));
    out << "  " << prefix << i << " [label=\"" << s.name << "\" "
        << NodeAttrs(s) << "];\n";
  }
  for (const Transition& t : a.transitions()) {
    out << "  " << prefix << t.from << " -> " << prefix << t.to
        << " [label=\"" << t.Label() << "\"];\n";
  }
}

}  // namespace

std::string ToDot(const Automaton& automaton, const std::string& title) {
  std::ostringstream out;
  out << "digraph \"" << title << "\" {\n";
  out << "  rankdir=TB;\n";
  EmitBody(out, automaton, "s");
  out << "}\n";
  return out.str();
}

std::string ToDot(const ProtocolSpec& spec) {
  std::ostringstream out;
  out << "digraph \"" << spec.name() << "\" {\n";
  out << "  rankdir=TB;\n";
  for (size_t r = 0; r < spec.num_roles(); ++r) {
    out << "  subgraph cluster_" << r << " {\n";
    out << "    label=\"" << spec.role_name(static_cast<RoleIndex>(r))
        << "\";\n";
    std::ostringstream body;
    EmitBody(body, spec.role(static_cast<RoleIndex>(r)),
             "r" + std::to_string(r) + "_");
    out << body.str();
    out << "  }\n";
  }
  out << "}\n";
  return out.str();
}

std::string TransitionTable(const Automaton& automaton) {
  std::ostringstream out;
  out << "state | kind     | on / send -> next\n";
  out << "------+----------+------------------\n";
  for (size_t i = 0; i < automaton.num_states(); ++i) {
    auto s = static_cast<StateIndex>(i);
    const LocalState& st = automaton.state(s);
    auto outgoing = automaton.TransitionsFrom(s);
    if (outgoing.empty()) {
      out << "  " << st.name << "   | " << ToString(st.kind) << " | (final)\n";
      continue;
    }
    bool first = true;
    for (size_t ti : outgoing) {
      const Transition& t = automaton.transitions()[ti];
      if (first) {
        out << "  " << st.name << "   | " << ToString(st.kind) << " | ";
        first = false;
      } else {
        out << "      |          | ";
      }
      out << t.Label() << " -> " << automaton.state(t.to).name << "\n";
    }
  }
  return out.str();
}

}  // namespace nbcp
