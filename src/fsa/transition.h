#ifndef NBCP_FSA_TRANSITION_H_
#define NBCP_FSA_TRANSITION_H_

#include <string>
#include <vector>

#include "fsa/state.h"

namespace nbcp {

/// Addressee set of a message send, or source set of a trigger, resolved
/// against the concrete site population at run/analysis time.
enum class Group : uint8_t {
  kNone = 0,
  kCoordinator,  ///< Site 1 (central-site paradigm).
  kSlaves,       ///< Sites 2..n (central-site paradigm).
  kAllPeers,     ///< Sites 1..n including self (decentralized paradigm).
  kNextPeer,     ///< Site self+1 (linear paradigm); empty at the tail.
  kPrevPeer,     ///< Site self-1 (linear paradigm); empty at the head.
};

/// How a transition becomes enabled.
enum class TriggerKind : uint8_t {
  /// The transaction arrives at this site from the client. Modeled as a
  /// virtual "__request" message present in the initial global state.
  kClientRequest = 0,
  /// One message of `msg_type` from the (single) member of `group`.
  kOneFrom,
  /// One message of `msg_type` from *every* member of `group`.
  kAllFrom,
  /// At least one message of `msg_type` from *some* member of `group`;
  /// exactly one is consumed. With `or_self_vote_no`, the transition may
  /// instead fire spontaneously as this site casting its own "no" vote —
  /// this models the parenthesized "(no_1)" in the paper's coordinator FSA.
  kAnyFrom,
};

/// The receive condition of a transition.
struct Trigger {
  TriggerKind kind = TriggerKind::kClientRequest;
  std::string msg_type;
  Group group = Group::kNone;
  bool or_self_vote_no = false;
};

/// One message emission performed during a transition.
struct SendSpec {
  std::string msg_type;
  Group to = Group::kNone;
};

/// A state transition of one role's automaton: read a (nonempty) string of
/// messages, write a string of messages, move to the next local state.
struct Transition {
  StateIndex from = kNoState;
  StateIndex to = kNoState;
  Trigger trigger;
  std::vector<SendSpec> sends;

  /// Firing this transition constitutes casting a yes vote (e.g. a slave
  /// answering "xact" with "yes", or the coordinator's implicit "(yes_1)"
  /// on its all-yes branch).
  bool votes_yes = false;

  /// Firing this transition constitutes casting a no vote. For kAnyFrom
  /// triggers with `or_self_vote_no`, the vote is cast only when the firing
  /// is spontaneous (no message consumed).
  bool votes_no = false;

  /// Human-readable label, e.g. "yes*/commit*".
  std::string Label() const;
};

std::string ToString(Group group);
std::string ToString(TriggerKind kind);

}  // namespace nbcp

#endif  // NBCP_FSA_TRANSITION_H_
