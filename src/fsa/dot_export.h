#ifndef NBCP_FSA_DOT_EXPORT_H_
#define NBCP_FSA_DOT_EXPORT_H_

#include <string>

#include "fsa/automaton.h"
#include "fsa/protocol_spec.h"

namespace nbcp {

/// Renders a single role automaton as a Graphviz digraph. Commit states are
/// drawn as double circles, abort states as double octagons, buffer states
/// shaded — matching the conventions of the paper's figures.
std::string ToDot(const Automaton& automaton, const std::string& title);

/// Renders every role of `spec` into one DOT document (clustered).
std::string ToDot(const ProtocolSpec& spec);

/// Plain-text transition table for a role automaton, used by the figure
/// reproduction benches.
std::string TransitionTable(const Automaton& automaton);

}  // namespace nbcp

#endif  // NBCP_FSA_DOT_EXPORT_H_
