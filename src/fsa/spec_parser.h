#ifndef NBCP_FSA_SPEC_PARSER_H_
#define NBCP_FSA_SPEC_PARSER_H_

#include <string>

#include "common/result.h"
#include "fsa/protocol_spec.h"

namespace nbcp {

/// Parses a protocol specification from the nbcp text format, so new
/// commit protocols can be defined, verified against the Fundamental
/// Nonblocking Theorem and executed without recompiling.
///
/// Format (one statement per line, `#` starts a comment):
///
///   protocol <name> <central|decentralized|linear>
///   role <name>
///     state <name> <initial|wait|buffer|abort-buffer|commit|abort>
///     on <from>: <trigger> / <sends> -> <to> [votes-yes|votes-no]
///
/// where
///   <trigger> := request
///              | one <msg> from <group>
///              | all <msg> from <group>
///              | any <msg> from <group> [or-self-no]
///   <sends>   := nothing | (send <msg> to <group>)+
///   <group>   := coordinator | slaves | all | next | prev
///
/// Example (the canonical 2PC slave):
///
///   protocol my-2pc central
///   role coordinator
///     state q1 initial
///     state w1 wait
///     state a1 abort
///     state c1 commit
///     on q1: request / send xact to slaves -> w1
///     on w1: all yes from slaves / send commit to slaves -> c1 votes-yes
///     on w1: any no from slaves or-self-no / send abort to slaves -> a1 votes-no
///   role slave
///     state q initial
///     state w wait
///     state a abort
///     state c commit
///     on q: one xact from coordinator / send yes to coordinator -> w votes-yes
///     on q: one xact from coordinator / send no to coordinator -> a votes-no
///     on w: one commit from coordinator / nothing -> c
///     on w: one abort from coordinator / nothing -> a
///
/// The parsed spec is validated structurally before being returned.
Result<ProtocolSpec> ParseProtocolSpec(const std::string& text);

/// Serializes a spec back to the text format. Round-trips: parsing the
/// output yields an isomorphic spec.
std::string SerializeProtocolSpec(const ProtocolSpec& spec);

}  // namespace nbcp

#endif  // NBCP_FSA_SPEC_PARSER_H_
