#ifndef NBCP_FSA_STATE_H_
#define NBCP_FSA_STATE_H_

#include <cstdint>
#include <string>

namespace nbcp {

/// Index of a local state within one role's automaton.
using StateIndex = int;

inline constexpr StateIndex kNoState = -1;

/// Classification of a local protocol state, following the paper: final
/// states are partitioned into commit states and abort states; `kBuffer`
/// marks the "prepare to commit" states introduced to make a protocol
/// nonblocking (they are ordinary intermediate states to the FSA semantics,
/// but the designation is kept for figure reproduction and synthesis).
enum class StateKind : uint8_t {
  kInitial = 0,  ///< q — awaiting the transaction.
  kWait,         ///< w — intermediate wait state.
  kBuffer,       ///< p — buffer ("prepare to commit") state.
  kAbortBuffer,  ///< pa — "prepare to abort" buffer (quorum protocols).
  kCommit,       ///< c — final commit state.
  kAbort,        ///< a — final abort state.
};

/// True for commit and abort states.
bool IsFinal(StateKind kind);

/// Short name ("initial", "wait", ...).
std::string ToString(StateKind kind);

/// One local state of a protocol automaton.
struct LocalState {
  std::string name;  ///< e.g. "q", "w", "p", "a", "c".
  StateKind kind = StateKind::kWait;
};

}  // namespace nbcp

#endif  // NBCP_FSA_STATE_H_
