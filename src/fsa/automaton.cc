#include "fsa/automaton.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <queue>
#include <set>

namespace nbcp {

StateIndex Automaton::AddState(std::string name, StateKind kind) {
  states_.push_back(LocalState{std::move(name), kind});
  return static_cast<StateIndex>(states_.size()) - 1;
}

void Automaton::AddTransition(Transition t) {
  assert(t.from >= 0 && t.from < static_cast<StateIndex>(states_.size()));
  assert(t.to >= 0 && t.to < static_cast<StateIndex>(states_.size()));
  transitions_.push_back(std::move(t));
}

std::vector<size_t> Automaton::TransitionsFrom(StateIndex s) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < transitions_.size(); ++i) {
    if (transitions_[i].from == s) out.push_back(i);
  }
  return out;
}

StateIndex Automaton::initial_state() const {
  StateIndex found = kNoState;
  for (size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].kind == StateKind::kInitial) {
      if (found != kNoState) return kNoState;  // Ambiguous.
      found = static_cast<StateIndex>(i);
    }
  }
  return found;
}

StateIndex Automaton::FindState(const std::string& name) const {
  for (size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].name == name) return static_cast<StateIndex>(i);
  }
  return kNoState;
}

bool Automaton::IsAcyclic() const {
  // Colors: 0 = unvisited, 1 = on stack, 2 = done.
  std::vector<int> color(states_.size(), 0);
  std::function<bool(StateIndex)> visit = [&](StateIndex s) {
    color[s] = 1;
    for (const Transition& t : transitions_) {
      if (t.from != s) continue;
      if (color[t.to] == 1) return false;
      if (color[t.to] == 0 && !visit(t.to)) return false;
    }
    color[s] = 2;
    return true;
  };
  for (size_t i = 0; i < states_.size(); ++i) {
    if (color[i] == 0 && !visit(static_cast<StateIndex>(i))) return false;
  }
  return true;
}

bool Automaton::Adjacent(StateIndex a, StateIndex b) const {
  for (const Transition& t : transitions_) {
    if ((t.from == a && t.to == b) || (t.from == b && t.to == a)) return true;
  }
  return false;
}

std::vector<StateIndex> Automaton::Neighbors(StateIndex s) const {
  std::set<StateIndex> out;
  for (const Transition& t : transitions_) {
    if (t.from == s) out.insert(t.to);
    if (t.to == s) out.insert(t.from);
  }
  out.erase(s);
  return {out.begin(), out.end()};
}

int Automaton::LongestPathLength() const {
  if (!IsAcyclic()) return -1;
  StateIndex init = initial_state();
  if (init == kNoState) return -1;
  // Longest path in a DAG by memoized DFS.
  std::vector<int> memo(states_.size(), -2);
  std::function<int(StateIndex)> longest = [&](StateIndex s) -> int {
    if (memo[s] != -2) return memo[s];
    int best = 0;
    for (const Transition& t : transitions_) {
      if (t.from != s) continue;
      best = std::max(best, 1 + longest(t.to));
    }
    memo[s] = best;
    return best;
  };
  return longest(init);
}

bool Automaton::CanVote() const {
  for (const Transition& t : transitions_) {
    if (t.votes_yes || t.votes_no || t.trigger.or_self_vote_no) return true;
  }
  return false;
}

Status Automaton::Validate() const {
  if (states_.empty()) return Status::InvalidArgument("automaton has no states");

  int initial_count = 0;
  bool has_commit = false;
  bool has_abort = false;
  for (const LocalState& s : states_) {
    if (s.kind == StateKind::kInitial) ++initial_count;
    if (s.kind == StateKind::kCommit) has_commit = true;
    if (s.kind == StateKind::kAbort) has_abort = true;
  }
  if (initial_count != 1) {
    return Status::InvalidArgument("automaton must have exactly one initial state");
  }
  if (!has_commit || !has_abort) {
    return Status::InvalidArgument(
        "final states must be partitioned into nonempty commit and abort sets");
  }

  for (const Transition& t : transitions_) {
    if (IsFinal(states_[t.from].kind)) {
      return Status::InvalidArgument("final state '" + states_[t.from].name +
                                     "' has an outgoing transition; "
                                     "commit and abort are irreversible");
    }
  }

  if (!IsAcyclic()) {
    return Status::InvalidArgument("state diagram must be acyclic");
  }

  // Reachability from the initial state.
  StateIndex init = initial_state();
  std::vector<bool> seen(states_.size(), false);
  std::queue<StateIndex> frontier;
  frontier.push(init);
  seen[init] = true;
  while (!frontier.empty()) {
    StateIndex s = frontier.front();
    frontier.pop();
    for (const Transition& t : transitions_) {
      if (t.from == s && !seen[t.to]) {
        seen[t.to] = true;
        frontier.push(t.to);
      }
    }
  }
  for (size_t i = 0; i < states_.size(); ++i) {
    // "Prepare to abort" parking states belong to the termination protocol
    // and are never entered by normal-operation transitions.
    if (states_[i].kind == StateKind::kAbortBuffer) continue;
    if (!seen[i]) {
      return Status::InvalidArgument("state '" + states_[i].name +
                                     "' is unreachable");
    }
  }
  return Status::OK();
}

namespace {

bool TransitionsMatch(const Transition& a, const Transition& b) {
  return a.trigger.kind == b.trigger.kind &&
         a.trigger.msg_type == b.trigger.msg_type &&
         a.trigger.group == b.trigger.group &&
         a.trigger.or_self_vote_no == b.trigger.or_self_vote_no &&
         a.votes_yes == b.votes_yes && a.votes_no == b.votes_no &&
         a.sends.size() == b.sends.size() &&
         std::equal(a.sends.begin(), a.sends.end(), b.sends.begin(),
                    [](const SendSpec& x, const SendSpec& y) {
                      return x.msg_type == y.msg_type && x.to == y.to;
                    });
}

/// Backtracking search for a structure-preserving bijection.
bool ExtendMapping(const Automaton& a, const Automaton& b,
                   std::vector<StateIndex>& map, StateIndex next) {
  auto n = static_cast<StateIndex>(a.num_states());
  if (next == n) {
    // Full candidate mapping: verify every transition corresponds.
    if (a.transitions().size() != b.transitions().size()) return false;
    for (const Transition& ta : a.transitions()) {
      bool matched = false;
      for (const Transition& tb : b.transitions()) {
        if (tb.from == map[ta.from] && tb.to == map[ta.to] &&
            TransitionsMatch(ta, tb)) {
          matched = true;
          break;
        }
      }
      if (!matched) return false;
    }
    return true;
  }
  for (StateIndex cand = 0; cand < n; ++cand) {
    if (a.state(next).kind != b.state(cand).kind) continue;
    if (std::find(map.begin(), map.begin() + next, cand) !=
        map.begin() + next) {
      continue;  // Already used.
    }
    map[next] = cand;
    if (ExtendMapping(a, b, map, next + 1)) return true;
  }
  return false;
}

}  // namespace

bool AutomataIsomorphic(const Automaton& a, const Automaton& b) {
  if (a.num_states() != b.num_states()) return false;
  if (a.transitions().size() != b.transitions().size()) return false;
  std::vector<StateIndex> map(a.num_states(), kNoState);
  return ExtendMapping(a, b, map, 0);
}

}  // namespace nbcp
