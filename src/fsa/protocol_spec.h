#ifndef NBCP_FSA_PROTOCOL_SPEC_H_
#define NBCP_FSA_PROTOCOL_SPEC_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "fsa/automaton.h"

namespace nbcp {

/// The two generic classes of commit protocols considered by the paper.
enum class Paradigm : uint8_t {
  kCentralSite = 0,   ///< One coordinator (site 1) directs slaves (2..n).
  kDecentralized = 1, ///< All sites execute the same peer protocol.
  kLinear = 2,        ///< Chained: head (site 1), middle, tail (site n).
};

std::string ToString(Paradigm paradigm);

/// Index of a role within a ProtocolSpec.
using RoleIndex = int;

/// A complete commit-protocol specification: one automaton per role plus
/// the paradigm that maps sites to roles.
///
/// Central-site specs have two roles, coordinator (index 0, executed by
/// site 1) and slave (index 1, sites 2..n). Decentralized specs have one
/// peer role executed by every site. The same spec object drives both the
/// analysis engine (reachable-state-graph construction, nonblocking
/// checking) and the runtime engine, so the protocol that is *proved*
/// nonblocking is the protocol that *runs*.
class ProtocolSpec {
 public:
  ProtocolSpec(std::string name, Paradigm paradigm)
      : name_(std::move(name)), paradigm_(paradigm) {}

  /// Adds a role automaton; returns its index. Central-site specs must add
  /// the coordinator first, then the slave.
  RoleIndex AddRole(std::string role_name, Automaton automaton);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  Paradigm paradigm() const { return paradigm_; }

  size_t num_roles() const { return roles_.size(); }
  const Automaton& role(RoleIndex r) const { return roles_[r].automaton; }
  Automaton& mutable_role(RoleIndex r) { return roles_[r].automaton; }
  const std::string& role_name(RoleIndex r) const { return roles_[r].name; }

  /// The role executed by `site` in an n-site population.
  RoleIndex RoleForSite(SiteId site, size_t n) const;

  /// Sites addressed by `group` when `self` sends, in an n-site population
  /// with sites numbered 1..n. kAllPeers includes `self` (the paper has
  /// decentralized sites send messages to themselves).
  std::vector<SiteId> ResolveGroup(Group group, SiteId self, size_t n) const;

  /// Validates each role automaton and the paradigm/role-count pairing.
  Status Validate() const;

  /// Number of phases: the maximum over roles of the longest path from
  /// initial to final state.
  int NumPhases() const;

 private:
  struct Role {
    std::string name;
    Automaton automaton;
  };

  std::string name_;
  Paradigm paradigm_;
  std::vector<Role> roles_;
};

}  // namespace nbcp

#endif  // NBCP_FSA_PROTOCOL_SPEC_H_
