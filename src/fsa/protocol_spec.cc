#include "fsa/protocol_spec.h"

#include <algorithm>

namespace nbcp {

std::string ToString(Paradigm paradigm) {
  switch (paradigm) {
    case Paradigm::kCentralSite:
      return "central-site";
    case Paradigm::kDecentralized:
      return "decentralized";
    case Paradigm::kLinear:
      return "linear";
  }
  return "unknown";
}

RoleIndex ProtocolSpec::AddRole(std::string role_name, Automaton automaton) {
  roles_.push_back(Role{std::move(role_name), std::move(automaton)});
  return static_cast<RoleIndex>(roles_.size()) - 1;
}

RoleIndex ProtocolSpec::RoleForSite(SiteId site, size_t n) const {
  switch (paradigm_) {
    case Paradigm::kDecentralized:
      return 0;
    case Paradigm::kCentralSite:
      return site == 1 ? 0 : 1;
    case Paradigm::kLinear:
      if (site == 1) return 0;
      return site == n ? 2 : 1;
  }
  return 0;
}

std::vector<SiteId> ProtocolSpec::ResolveGroup(Group group, SiteId self,
                                               size_t n) const {
  std::vector<SiteId> out;
  switch (group) {
    case Group::kNone:
      break;
    case Group::kCoordinator:
      out.push_back(1);
      break;
    case Group::kSlaves:
      for (SiteId s = 2; s <= n; ++s) out.push_back(s);
      break;
    case Group::kAllPeers:
      for (SiteId s = 1; s <= n; ++s) out.push_back(s);
      break;
    case Group::kNextPeer:
      if (self < n) out.push_back(self + 1);
      break;
    case Group::kPrevPeer:
      if (self > 1) out.push_back(self - 1);
      break;
  }
  return out;
}

Status ProtocolSpec::Validate() const {
  if (paradigm_ == Paradigm::kCentralSite && roles_.size() != 2) {
    return Status::InvalidArgument(
        "central-site protocol needs coordinator and slave roles");
  }
  if (paradigm_ == Paradigm::kDecentralized && roles_.size() != 1) {
    return Status::InvalidArgument(
        "decentralized protocol needs exactly one peer role");
  }
  if (paradigm_ == Paradigm::kLinear && roles_.size() != 3) {
    return Status::InvalidArgument(
        "linear protocol needs head, middle and tail roles");
  }
  for (const Role& role : roles_) {
    Status s = role.automaton.Validate();
    if (!s.ok()) {
      return Status::InvalidArgument("role '" + role.name +
                                     "' invalid: " + s.message());
    }
  }
  return Status::OK();
}

int ProtocolSpec::NumPhases() const {
  int phases = 0;
  for (const Role& role : roles_) {
    phases = std::max(phases, role.automaton.LongestPathLength());
  }
  return phases;
}

}  // namespace nbcp
