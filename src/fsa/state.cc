#include "fsa/state.h"

namespace nbcp {

bool IsFinal(StateKind kind) {
  return kind == StateKind::kCommit || kind == StateKind::kAbort;
}

std::string ToString(StateKind kind) {
  switch (kind) {
    case StateKind::kInitial:
      return "initial";
    case StateKind::kWait:
      return "wait";
    case StateKind::kBuffer:
      return "buffer";
    case StateKind::kAbortBuffer:
      return "abort-buffer";
    case StateKind::kCommit:
      return "commit";
    case StateKind::kAbort:
      return "abort";
  }
  return "unknown";
}

}  // namespace nbcp
