#include "termination/backup_coordinator.h"

namespace nbcp {

Outcome PaperTerminationDecision(const ConcurrencyAnalysis& analysis,
                                 SiteId site, StateIndex state) {
  // A final state decides itself.
  StateKind kind = analysis.graph().KindOf(site, state);
  if (kind == StateKind::kCommit) return Outcome::kCommitted;
  if (kind == StateKind::kAbort) return Outcome::kAborted;
  return analysis.ConcurrentWithCommit(site, state) ? Outcome::kCommitted
                                                    : Outcome::kAborted;
}

Result<Outcome> SafeTerminationDecision(const ConcurrencyAnalysis& analysis,
                                        SiteId site, StateIndex state) {
  StateKind kind = analysis.graph().KindOf(site, state);
  if (kind == StateKind::kCommit) return Outcome::kCommitted;
  if (kind == StateKind::kAbort) return Outcome::kAborted;

  bool with_commit = analysis.ConcurrentWithCommit(site, state);
  bool with_abort = analysis.ConcurrentWithAbort(site, state);
  if (!with_commit) {
    // No site can have committed: abort is safe.
    return Outcome::kAborted;
  }
  if (with_abort) {
    return Status::Blocked(
        "concurrency set contains both commit and abort states");
  }
  if (!analysis.IsCommittable(site, state)) {
    return Status::Blocked(
        "noncommittable state whose concurrency set contains a commit state");
  }
  return Outcome::kCommitted;
}

Result<Outcome> CooperativeTerminationDecision(
    const ConcurrencyAnalysis& analysis, SiteId backup_site,
    StateIndex backup_state,
    const std::vector<std::pair<SiteId, StateIndex>>& survivor_states,
    bool complete_view) {
  // Rule 1: adopt any already-final survivor outcome.
  for (const auto& [site, state] : survivor_states) {
    StateKind kind = analysis.graph().KindOf(site, state);
    if (kind == StateKind::kCommit) return Outcome::kCommitted;
    if (kind == StateKind::kAbort) return Outcome::kAborted;
  }

  // Rule 2: the backup's own state.
  Result<Outcome> own =
      SafeTerminationDecision(analysis, backup_site, backup_state);
  if (own.ok()) return own;

  // Rule 3: a survivor whose state precludes any commit proves abort safe
  // (e.g. a 2PC participant still in q has not voted, so nobody committed).
  for (const auto& [site, state] : survivor_states) {
    if (!analysis.ConcurrentWithCommit(site, state)) {
      return Outcome::kAborted;
    }
  }

  // Rule 4 (total-failure recovery): the states above are everyone's — no
  // hidden site can have committed, so abort is safe. The uncertainty the
  // blocking rules guard against ("someone I cannot see may have decided")
  // does not exist under a complete view.
  if (complete_view) return Outcome::kAborted;

  return Status::Blocked("all operational sites are in uncertainty states");
}

}  // namespace nbcp
