#include "termination/termination.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics_registry.h"
#include "termination/backup_coordinator.h"

namespace nbcp {
namespace {
const char kStateReq[] = "term:state-req";
const char kStateRep[] = "term:state";
const char kMove[] = "term:move";
const char kMoved[] = "term:moved";
const char kDecide[] = "term:decide";
const char kDecideReq[] = "term:decide-req";
const char kBlockedMsg[] = "term:blocked";
}  // namespace

TerminationProtocol::TerminationProtocol(
    SiteId self, Clock* clock, Transport* network, Election* election,
    const ConcurrencyAnalysis* analysis, TerminationHooks hooks,
    TerminationConfig config)
    : self_(self),
      clock_(clock),
      network_(network),
      election_(election),
      analysis_(analysis),
      hooks_(std::move(hooks)),
      config_(config) {}

bool TerminationProtocol::OwnsMessage(const std::string& type) {
  return type.rfind("term:", 0) == 0;
}

TerminationProtocol::Session& TerminationProtocol::GetSession(
    TransactionId txn) {
  return sessions_[txn];
}

void TerminationProtocol::Send(SiteId to, const std::string& type,
                               TransactionId txn, std::string payload) {
  Message m;
  m.type = type;
  m.from = self_;
  m.to = to;
  m.txn = txn;
  m.payload = std::move(payload);
  (void)network_->Send(std::move(m));
}

void TerminationProtocol::Broadcast(const std::string& type,
                                    TransactionId txn, std::string payload) {
  for (SiteId site : hooks_.alive_sites()) {
    if (site != self_) Send(site, type, txn, payload);
  }
}

void TerminationProtocol::Initiate(TransactionId txn) {
  if (hooks_.is_decided(txn)) return;
  Session& session = GetSession(txn);
  if (session.phase != Phase::kIdle && session.phase != Phase::kBlocked) {
    return;
  }
  if (session.phase == Phase::kBlocked) {
    // Re-initiation (e.g. a site recovered): run a fresh election round.
    election_->Reset(txn);
  }
  session.phase = Phase::kElecting;
  session.backup = kNoSite;
  if (metrics_ != nullptr) metrics_->counter("termination/sessions").Inc();
  NBCP_LOG_AT(kDebug, self_) << "initiating termination of txn " << txn;
  if (hooks_.freeze) hooks_.freeze(txn);
  election_->StartElection(txn);
}

void TerminationProtocol::InitiateAsBackup(TransactionId txn) {
  if (hooks_.is_decided(txn)) return;
  Session& session = GetSession(txn);
  if (session.phase != Phase::kIdle && session.phase != Phase::kBlocked &&
      session.phase != Phase::kElecting) {
    return;
  }
  if (hooks_.freeze) hooks_.freeze(txn);
  session.backup = self_;
  BeginCollect(txn);
}

void TerminationProtocol::OnElected(TransactionId txn, SiteId leader) {
  Session& session = GetSession(txn);
  if (session.phase == Phase::kDone) {
    // A straggler (e.g. from across a healed partition) elected us after
    // this session already finished: re-broadcast the decision so it can
    // adopt the outcome. Idempotent for everyone else.
    if (leader == self_ && session.decision != Outcome::kUndecided) {
      Broadcast(kDecide, txn,
                session.decision == Outcome::kCommitted ? "commit"
                                                        : "abort");
    }
    return;
  }
  session.backup = leader;
  if (leader != self_) {
    // Wait for the backup's directives; also ask explicitly, in case the
    // backup finished this termination long ago (we may be a straggler
    // from across a healed partition, and its session will not re-run).
    session.phase = Phase::kElecting;
    Send(leader, kDecideReq, txn);
    return;
  }
  BeginCollect(txn);
}

void TerminationProtocol::BeginCollect(TransactionId txn) {
  Session& session = GetSession(txn);
  session.phase = Phase::kCollecting;
  session.survivor_states.clear();
  session.survivor_states[self_] = hooks_.current_state(txn);
  Broadcast(kStateReq, txn);
  if (session.deadline != 0) clock_->Cancel(session.deadline);
  session.deadline = clock_->ScheduleTimer(
      config_.collect_timeout, self_,
      [this, txn, token = std::weak_ptr<char>(alive_token_)]() {
        if (token.expired()) return;
        Session& s = GetSession(txn);
        if (s.phase == Phase::kCollecting) DecideAndDirect(txn);
      });
  // A lone survivor decides immediately.
  if (hooks_.alive_sites().size() <= 1) DecideAndDirect(txn);
}

void TerminationProtocol::DeclareBlocked(TransactionId txn,
                                         const std::string& why) {
  Session& session = GetSession(txn);
  NBCP_LOG_AT(kDebug, self_) << "txn " << txn << " termination blocked: "
                             << why;
  session.phase = Phase::kBlocked;
  if (metrics_ != nullptr) metrics_->counter("termination/blocked").Inc();
  Broadcast(kBlockedMsg, txn);
  if (hooks_.on_blocked) hooks_.on_blocked(txn);
}

void TerminationProtocol::BeginMove(TransactionId txn, StateKind target,
                                    size_t required_acks) {
  Session& session = GetSession(txn);
  session.phase = Phase::kMoving;
  session.required_acks = required_acks;
  session.move_acks.clear();
  (void)hooks_.force_kind(txn, target);  // The backup moves itself too.
  session.move_acks.insert(self_);
  Broadcast(kMove, txn, std::to_string(static_cast<int>(target)));
  session.deadline = clock_->ScheduleTimer(
      config_.collect_timeout, self_,
      [this, txn, token = std::weak_ptr<char>(alive_token_)]() {
        if (token.expired()) return;
        Session& s = GetSession(txn);
        if (s.phase != Phase::kMoving) return;
        if (s.required_acks != 0 && s.move_acks.size() < s.required_acks) {
          // Quorum not assembled: do NOT decide — this is what keeps two
          // partition sides from diverging.
          DeclareBlocked(txn, "move quorum not reached before deadline");
          return;
        }
        BroadcastDecision(txn, s.decision);
      });
}

void TerminationProtocol::DecideAndDirect(TransactionId txn) {
  Session& session = GetSession(txn);
  if (session.phase != Phase::kCollecting) return;
  if (session.deadline != 0) {
    clock_->Cancel(session.deadline);
    session.deadline = 0;
  }
  if (config_.quorum_mode) {
    QuorumDecideAndDirect(txn);
    return;
  }

  StateIndex own_state = hooks_.current_state(txn);
  SiteId self_rep = hooks_.analysis_site ? hooks_.analysis_site(self_) : self_;
  std::vector<std::pair<SiteId, StateIndex>> survivors;
  survivors.reserve(session.survivor_states.size());
  for (const auto& [site, state] : session.survivor_states) {
    SiteId rep = hooks_.analysis_site ? hooks_.analysis_site(site) : site;
    survivors.emplace_back(rep, state);
  }
  // A report from every site in the population is a complete view: after
  // a total failure, once everyone has recovered, the assembled durable
  // states leave no room for an unseen decision.
  bool complete_view = config_.num_sites != 0 &&
                       session.survivor_states.size() == config_.num_sites;
  Result<Outcome> decision = CooperativeTerminationDecision(
      *analysis_, self_rep, own_state, survivors, complete_view);

  if (!decision.ok()) {
    DeclareBlocked(txn, decision.status().ToString());
    return;
  }
  session.decision = *decision;

  // Phase 1 can be omitted when the backup is already in a final state.
  StateKind own_kind = analysis_->graph().KindOf(self_rep, own_state);
  if (IsFinal(own_kind)) {
    BroadcastDecision(txn, session.decision);
    return;
  }
  BeginMove(txn, own_kind, /*required_acks=*/0);
}

void TerminationProtocol::QuorumDecideAndDirect(TransactionId txn) {
  Session& session = GetSession(txn);
  size_t n = config_.num_sites;
  size_t commit_quorum =
      config_.commit_quorum != 0 ? config_.commit_quorum : n / 2 + 1;
  size_t abort_quorum =
      config_.abort_quorum != 0 ? config_.abort_quorum : n / 2 + 1;

  // Classify the reachable sites' states.
  size_t prepared_commit = 0;
  bool any_commit = false;
  bool any_abort = false;
  for (const auto& [site, state] : session.survivor_states) {
    SiteId rep = hooks_.analysis_site ? hooks_.analysis_site(site) : site;
    switch (analysis_->graph().KindOf(rep, state)) {
      case StateKind::kCommit:
        any_commit = true;
        break;
      case StateKind::kAbort:
        any_abort = true;
        break;
      case StateKind::kBuffer:
        ++prepared_commit;
        break;
      default:
        break;
    }
  }
  size_t reachable = session.survivor_states.size();

  // Rule 1/2: a final state among the reachable sites decides.
  if (any_commit) {
    session.decision = Outcome::kCommitted;
    BroadcastDecision(txn, session.decision);
    return;
  }
  if (any_abort) {
    session.decision = Outcome::kAborted;
    BroadcastDecision(txn, session.decision);
    return;
  }
  // Rule 3: some site is prepared-to-commit and a commit quorum is
  // reachable: move everyone to p, decide commit once Vc sites acked.
  if (prepared_commit > 0 && reachable >= commit_quorum) {
    session.decision = Outcome::kCommitted;
    BeginMove(txn, StateKind::kBuffer, commit_quorum);
    return;
  }
  // Rule 4: nobody prepared-to-commit and an abort quorum is reachable:
  // move everyone to pa, decide abort once Va sites acked.
  if (prepared_commit == 0 && reachable >= abort_quorum) {
    session.decision = Outcome::kAborted;
    BeginMove(txn, StateKind::kAbortBuffer, abort_quorum);
    return;
  }
  // Rule 5: no quorum reachable — wait for the partition to heal or sites
  // to recover (re-initiated by the owner on up-reports).
  DeclareBlocked(txn, "no quorum reachable (" + std::to_string(reachable) +
                          " sites, need " + std::to_string(commit_quorum) +
                          "/" + std::to_string(abort_quorum) + ")");
}

void TerminationProtocol::BroadcastDecision(TransactionId txn,
                                            Outcome outcome) {
  Session& session = GetSession(txn);
  if (session.deadline != 0) {
    clock_->Cancel(session.deadline);
    session.deadline = 0;
  }
  Broadcast(kDecide, txn,
            outcome == Outcome::kCommitted ? "commit" : "abort");
  ApplyDecision(txn, outcome);
}

void TerminationProtocol::ApplyDecision(TransactionId txn, Outcome outcome) {
  Session& session = GetSession(txn);
  session.phase = Phase::kDone;
  session.decision = outcome;
  if (metrics_ != nullptr) metrics_->counter("termination/decides").Inc();
  Status s = hooks_.force_outcome(txn, outcome);
  NBCP_LOG_IF(kWarn, !s.ok())
      << "site " << self_ << " txn " << txn << " termination decision "
      << ToString(outcome) << " conflicts: " << s.ToString();
  if (hooks_.on_terminated) hooks_.on_terminated(txn, outcome);
}

void TerminationProtocol::OnMessage(const Message& message) {
  TransactionId txn = message.txn;
  Session& session = GetSession(txn);

  if (message.type == kStateReq) {
    if (hooks_.freeze) hooks_.freeze(txn);
    Send(message.from, kStateRep, txn,
         std::to_string(hooks_.current_state(txn)));
    return;
  }
  if (message.type == kStateRep) {
    if (session.phase != Phase::kCollecting) return;
    session.survivor_states[message.from] =
        static_cast<StateIndex>(std::stoi(message.payload));
    // All operational sites reported?
    bool all_in = true;
    for (SiteId site : hooks_.alive_sites()) {
      if (session.survivor_states.count(site) == 0) {
        all_in = false;
        break;
      }
    }
    if (all_in) DecideAndDirect(txn);
    return;
  }
  if (message.type == kMove) {
    if (hooks_.freeze) hooks_.freeze(txn);
    auto kind = static_cast<StateKind>(std::stoi(message.payload));
    (void)hooks_.force_kind(txn, kind);  // Final states stay put.
    Send(message.from, kMoved, txn);
    return;
  }
  if (message.type == kMoved) {
    if (session.phase != Phase::kMoving) return;
    session.move_acks.insert(message.from);
    if (session.required_acks != 0) {
      // Quorum mode: decide as soon as the quorum of sites moved.
      if (session.move_acks.size() >= session.required_acks) {
        BroadcastDecision(txn, session.decision);
      }
      return;
    }
    bool all_in = true;
    for (SiteId site : hooks_.alive_sites()) {
      if (session.move_acks.count(site) == 0) {
        all_in = false;
        break;
      }
    }
    if (all_in) BroadcastDecision(txn, session.decision);
    return;
  }
  if (message.type == kDecide) {
    Outcome outcome = message.payload == "commit" ? Outcome::kCommitted
                                                  : Outcome::kAborted;
    ApplyDecision(txn, outcome);
    return;
  }
  if (message.type == kDecideReq) {
    // A straggler asks for an already-made decision. Answer only if this
    // session concluded; an in-flight session will direct it normally.
    if (session.phase == Phase::kDone &&
        session.decision != Outcome::kUndecided) {
      Send(message.from, kDecide, txn,
           session.decision == Outcome::kCommitted ? "commit" : "abort");
    }
    return;
  }
  if (message.type == kBlockedMsg) {
    session.phase = Phase::kBlocked;
    if (hooks_.on_blocked) hooks_.on_blocked(txn);
    return;
  }
}

void TerminationProtocol::OnSiteFailure(SiteId failed) {
  // Restart any session whose backup died mid-protocol; also let sessions
  // previously blocked re-evaluate (the failure may have removed the last
  // uncertainty? it cannot — failures only lose information — but the
  // restart is harmless and keeps the logic uniform).
  std::vector<TransactionId> to_restart;
  for (auto& [txn, session] : sessions_) {
    if (session.phase == Phase::kDone) continue;
    if (session.backup == failed) to_restart.push_back(txn);
  }
  for (TransactionId txn : to_restart) {
    Session& session = sessions_[txn];
    session.phase = Phase::kIdle;
    session.backup = kNoSite;
    election_->Reset(txn);
    Initiate(txn);
  }
}

bool TerminationProtocol::IsBlocked(TransactionId txn) const {
  auto it = sessions_.find(txn);
  return it != sessions_.end() && it->second.phase == Phase::kBlocked;
}

void TerminationProtocol::Clear() { sessions_.clear(); }

}  // namespace nbcp
