#ifndef NBCP_TERMINATION_BACKUP_COORDINATOR_H_
#define NBCP_TERMINATION_BACKUP_COORDINATOR_H_

#include <utility>
#include <vector>

#include "analysis/concurrency_set.h"
#include "common/result.h"
#include "common/types.h"

namespace nbcp {

/// The paper's decision rule for backup coordinators: "if the concurrency
/// set for the current state of the backup coordinator contains a commit
/// state, then the transaction is committed; otherwise, it is aborted."
///
/// Sound only for protocols satisfying the Fundamental Nonblocking Theorem;
/// applying it to a blocking protocol's wait state would violate atomicity
/// (use SafeTerminationDecision there).
Outcome PaperTerminationDecision(const ConcurrencyAnalysis& analysis,
                                 SiteId site, StateIndex state);

/// Theorem-guarded variant: returns the paper decision when the state
/// satisfies both theorem conditions, and kBlocked when it does not (the
/// site "cannot commit because it cannot infer that all sites have voted
/// yes, and cannot abort because another site may have committed before
/// crashing").
Result<Outcome> SafeTerminationDecision(const ConcurrencyAnalysis& analysis,
                                        SiteId site, StateIndex state);

/// Cooperative extension used by the runtime so that blocking protocols
/// block only when truly stuck:
///  1. if any operational site already reached a final state, adopt it;
///  2. otherwise, if the backup's own state decides safely, use that;
///  3. otherwise, if some operational site's state is never concurrent
///     with a commit state, abort is safe (it proves nobody committed);
///  4. with `complete_view` — the survivor set covers EVERY site, i.e.
///     after a total failure once everyone recovered — no final state
///     anywhere means no decision was ever made durable: abort is safe
///     even from states the partial-knowledge rules cannot resolve;
///  5. otherwise kBlocked.
///
/// `survivor_states` holds (site, state) pairs for the operational sites.
/// Site ids must be valid in `analysis`; when the live population is larger
/// than the analyzed one, callers map each site to a same-role
/// representative first (the role automata make same-role sites symmetric).
Result<Outcome> CooperativeTerminationDecision(
    const ConcurrencyAnalysis& analysis, SiteId backup_site,
    StateIndex backup_state,
    const std::vector<std::pair<SiteId, StateIndex>>& survivor_states,
    bool complete_view = false);

}  // namespace nbcp

#endif  // NBCP_TERMINATION_BACKUP_COORDINATOR_H_
