#ifndef NBCP_TERMINATION_TERMINATION_H_
#define NBCP_TERMINATION_TERMINATION_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>

#include "analysis/concurrency_set.h"
#include "common/types.h"
#include "election/election.h"
#include "runtime/clock.h"
#include "runtime/transport.h"

namespace nbcp {

class MetricsRegistry;

/// Callbacks wiring a TerminationProtocol into its owning participant.
struct TerminationHooks {
  /// Local state index of `txn` in this site's role automaton.
  std::function<StateIndex(TransactionId)> current_state;

  /// Maps a live site id to the same-role representative site used by the
  /// (possibly smaller-population) concurrency analysis. Identity when the
  /// analysis was built for the full population.
  std::function<SiteId(SiteId)> analysis_site;

  /// Stops normal protocol processing of `txn` at this site: once a site
  /// reports its state to a backup coordinator it must not fire ordinary
  /// transitions anymore, or in-flight votes could race the termination
  /// decision into a mixed (inconsistent) outcome.
  std::function<void(TransactionId)> freeze;

  /// Moves `txn` to the role's state of the given kind (no-op if final).
  std::function<Status(TransactionId, StateKind)> force_kind;

  /// Decides `txn` locally (applies the outcome to the database layer too).
  std::function<Status(TransactionId, Outcome)> force_outcome;

  /// True once `txn` reached a final state at this site.
  std::function<bool(TransactionId)> is_decided;

  /// Operational sites per this site's failure detector, ascending.
  std::function<std::vector<SiteId>()> alive_sites;

  /// Invoked when the termination protocol decides `txn`.
  std::function<void(TransactionId, Outcome)> on_terminated;

  /// Invoked when termination concludes the transaction is blocked.
  std::function<void(TransactionId)> on_blocked;
};

/// Configuration of the termination protocol.
struct TerminationConfig {
  /// Deadline for collecting state reports / move acks, simulated us.
  SimTime collect_timeout = 20000;

  /// Quorum termination (Skeen's quorum-based commit protocol): commit
  /// requires `commit_quorum` sites moved into the p buffer, abort
  /// requires `abort_quorum` sites moved into pa; with Vc + Va > n, two
  /// sides of a partition can never decide differently — the side without
  /// a quorum blocks until the partition heals.
  bool quorum_mode = false;
  size_t commit_quorum = 0;  ///< 0 = majority (n/2 + 1).
  size_t abort_quorum = 0;   ///< 0 = majority (n/2 + 1).
  size_t num_sites = 0;      ///< Filled in by the owning participant.
};

/// The paper's termination protocol: invoked "when crashes of other sites
/// impair the execution of a commit protocol", it elects a backup
/// coordinator which directs the remaining sites to a consistent commit or
/// abort based only on its local state (Decision Rule For Backup
/// Coordinators), via a 2-phase protocol:
///   1. "move to my state" — all operational sites adopt the backup's
///      state and acknowledge (so a backup failure leaves a consistent
///      picture for the next backup);
///   2. commit or abort.
/// Phase 1 is skipped when the backup is already in a final state.
///
/// For blocking protocols (2PC) the safe/cooperative decision rule may
/// conclude "blocked": operational sites then stay undecided until the
/// crashed coordinator recovers — exactly the blocking behaviour the paper
/// sets out to eliminate.
///
/// Message types: "term:state-req", "term:state", "term:move",
/// "term:moved", "term:decide", "term:blocked".
class TerminationProtocol {
 public:
  TerminationProtocol(SiteId self, Clock* clock, Transport* network,
                      Election* election, const ConcurrencyAnalysis* analysis,
                      TerminationHooks hooks, TerminationConfig config = {});

  TerminationProtocol(const TerminationProtocol&) = delete;
  TerminationProtocol& operator=(const TerminationProtocol&) = delete;

  /// Starts (or restarts) termination of `txn`. No-op when already decided
  /// locally or a session is in a later stage.
  void Initiate(TransactionId txn);

  /// Starts termination with this site as backup coordinator directly,
  /// skipping the election. Used by the central-site paradigm when the
  /// (operational) coordinator itself terminates a transaction impaired by
  /// a slave failure: the coordinator is the distinguished site and needs
  /// no election.
  void InitiateAsBackup(TransactionId txn);

  /// Election result for tag `txn` (wired from the election's callback).
  void OnElected(TransactionId txn, SiteId leader);

  /// Feeds a "term:*" message.
  void OnMessage(const Message& message);

  /// A site failed; restarts sessions whose backup died.
  void OnSiteFailure(SiteId failed);

  /// True when termination concluded `txn` is blocked at this site.
  bool IsBlocked(TransactionId txn) const;

  /// Drops all session state (site crash).
  void Clear();

  /// Attaches a metrics registry (not owned; nullptr detaches): counts
  /// sessions initiated ("termination/sessions"), decisions applied
  /// ("termination/decides") and blocked verdicts ("termination/blocked").
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  static bool OwnsMessage(const std::string& type);

 private:
  enum class Phase : uint8_t {
    kIdle = 0,
    kElecting,
    kCollecting,  ///< Backup only: gathering survivor states.
    kMoving,      ///< Backup only: waiting for move acks.
    kDone,
    kBlocked,
  };

  struct Session {
    Phase phase = Phase::kIdle;
    SiteId backup = kNoSite;
    std::map<SiteId, StateIndex> survivor_states;  ///< Backup only.
    std::set<SiteId> move_acks;                    ///< Backup only.
    EventId deadline = 0;
    Outcome decision = Outcome::kUndecided;
    /// Quorum mode: acks needed before the decision may be broadcast
    /// (0 = all operational sites, the non-quorum behaviour).
    size_t required_acks = 0;
  };

  Session& GetSession(TransactionId txn);
  void Send(SiteId to, const std::string& type, TransactionId txn,
            std::string payload = "");
  void Broadcast(const std::string& type, TransactionId txn,
                 std::string payload = "");

  /// Backup-side: begins state collection (phase 0) for `txn`.
  void BeginCollect(TransactionId txn);

  /// Backup-side: decides once states are in (or the deadline fires).
  void DecideAndDirect(TransactionId txn);

  /// Backup-side quorum variant of DecideAndDirect.
  void QuorumDecideAndDirect(TransactionId txn);

  /// Backup-side: enters the move phase towards `target`, requiring
  /// `required_acks` acknowledgements (0 = all operational).
  void BeginMove(TransactionId txn, StateKind target, size_t required_acks);

  /// Marks the session blocked and tells everyone.
  void DeclareBlocked(TransactionId txn, const std::string& why);

  /// Backup-side: phase-2 broadcast + local application.
  void BroadcastDecision(TransactionId txn, Outcome outcome);

  void ApplyDecision(TransactionId txn, Outcome outcome);

  SiteId self_;
  Clock* clock_;
  Transport* network_;
  Election* election_;
  const ConcurrencyAnalysis* analysis_;
  TerminationHooks hooks_;
  TerminationConfig config_;
  MetricsRegistry* metrics_ = nullptr;
  std::unordered_map<TransactionId, Session> sessions_;

  /// Liveness token: scheduled deadlines hold a weak reference and become
  /// no-ops once this object is destroyed (e.g. its site crashed).
  std::shared_ptr<char> alive_token_ = std::make_shared<char>(0);
};

}  // namespace nbcp

#endif  // NBCP_TERMINATION_TERMINATION_H_
