#ifndef NBCP_RUNTIME_SCHEDULE_LOG_H_
#define NBCP_RUNTIME_SCHEDULE_LOG_H_

#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/causal_clock.h"
#include "common/types.h"

namespace nbcp {

/// One scheduling choice observed during a threaded run, in the vocabulary
/// nbcp-explore speaks: a protocol start at a site, or a delivery of a
/// message type at a site from a sender. `stamp` is the receiver's
/// post-tick causal stamp, so the log carries its own happens-before
/// evidence.
struct ScheduleRecord {
  char kind = 'd';  ///< 's' = protocol start, 'd' = delivery.
  SiteId site = kNoSite;
  SiteId from = kNoSite;  ///< Sender (deliveries only).
  std::string msg_type;   ///< Message type (deliveries only).
  size_t dup = 0;         ///< Occurrence index among identical channels.
  ClockStamp stamp;
};

/// Append-only, mutex-guarded log of the scheduling choices a threaded run
/// actually made. Per-site workers append deliveries as they pop them (in
/// handler order), the driver appends starts; the append order is a causal
/// linearization of the run — a send is always stored before the delivery
/// it caused — so replaying the log through nbcp-explore reproduces the
/// execution on the virtual-time backend.
class ScheduleLog {
 public:
  void Append(ScheduleRecord record) {
    std::lock_guard<std::mutex> lock(mu_);
    records_.push_back(std::move(record));
  }

  std::vector<ScheduleRecord> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    records_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<ScheduleRecord> records_;
};

}  // namespace nbcp

#endif  // NBCP_RUNTIME_SCHEDULE_LOG_H_
