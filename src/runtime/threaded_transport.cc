#include "runtime/threaded_transport.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics_registry.h"

namespace nbcp {

ThreadedTransport::ThreadedTransport(Clock* clock, Options options)
    : clock_(clock), inbox_capacity_(options.inbox_capacity) {}

ThreadedTransport::~ThreadedTransport() { Shutdown(); }

Status ThreadedTransport::RegisterSite(SiteId site, Handler handler) {
  if (site == kNoSite) {
    return Status::InvalidArgument("site id 0 is reserved");
  }
  if (!handler) {
    return Status::InvalidArgument("null handler");
  }
  SiteState* state = nullptr;
  bool fresh = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::Unavailable("transport is shut down");
    }
    auto [it, inserted] = sites_.try_emplace(site, nullptr);
    if (inserted) {
      it->second = std::make_unique<SiteState>(site);
      fresh = true;
    }
    state = it->second.get();
    down_sites_.erase(site);
  }
  {
    std::lock_guard<std::mutex> lock(state->m);
    state->handler = std::move(handler);
  }
  if (fresh) {
    state->worker = std::thread([this, state] { WorkerLoop(state); });
  }
  return Status::OK();
}

ThreadedTransport::SiteState* ThreadedTransport::FindSite(SiteId site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? nullptr : it->second.get();
}

Status ThreadedTransport::Send(Message msg) {
  SiteState* receiver = nullptr;
  uint64_t inflight_msgs = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto sender = sites_.find(msg.from);
    if (sender == sites_.end()) {
      return Status::InvalidArgument("unregistered sender site");
    }
    if (down_sites_.count(msg.from) != 0) {
      return Status::Unavailable("sender site is down");
    }
    msg.sent_at = clock_->now();
    msg.seq = ++next_seq_;
    ++stats_.messages_sent;
    stats_.bytes_sent += msg.payload.size();
    inflight_msgs = stats_.messages_sent - stats_.messages_delivered -
                    stats_.messages_dropped;
    auto rcv = sites_.find(msg.to);
    if (rcv != sites_.end()) receiver = rcv->second.get();
  }
  if (clocks_ != nullptr) msg.stamp = clocks_->OnSend(msg.from);
  if (metrics_ != nullptr) {
    metrics_->counter("net/sent").Inc();
    metrics_->series("net/inflight").Record(clock_->now(), inflight_msgs);
  }
  if (observer_) observer_(msg, 's');

  if (receiver == nullptr) {
    // Unknown receiver: nothing will ever pop this, so resolve the drop
    // at send time (the simulated Network resolves it at delivery time;
    // the observable outcome is the same 'x').
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.messages_dropped;
    }
    if (metrics_ != nullptr) metrics_->counter("net/dropped").Inc();
    if (observer_) observer_(msg, 'x');
    return Status::OK();
  }

  if (inflight_ != nullptr) inflight_->Add(1);
  Item item;
  item.msg = std::move(msg);
  if (!Enqueue(receiver, std::move(item), /*bounded=*/true)) {
    // Shutdown raced the send; the run is over, account it as dropped.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.messages_dropped;
  }
  return Status::OK();
}

bool ThreadedTransport::Enqueue(SiteState* state, Item item, bool bounded) {
  size_t depth = 0;
  {
    std::unique_lock<std::mutex> lock(state->m);
    if (bounded && std::this_thread::get_id() != state->worker_id) {
      // Backpressure: block until the receiver drains (self-sends bypass
      // the bound — blocking on your own full inbox is a self-deadlock).
      state->not_full.wait(lock, [&] {
        return state->inbox.size() < inbox_capacity_ || state->stop;
      });
    }
    if (state->stop) {
      lock.unlock();
      if (inflight_ != nullptr) inflight_->Done();
      return false;
    }
    state->inbox.push_back(std::move(item));
    depth = state->inbox.size();
    state->not_empty.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    max_inbox_depth_ = std::max(max_inbox_depth_, depth);
  }
  return true;
}

void ThreadedTransport::WorkerLoop(SiteState* state) {
  {
    std::lock_guard<std::mutex> lock(state->m);
    state->worker_id = std::this_thread::get_id();
  }
  while (true) {
    std::deque<Item> local;
    {
      std::unique_lock<std::mutex> lock(state->m);
      state->not_empty.wait(
          lock, [&] { return state->stop || !state->inbox.empty(); });
      if (state->stop) break;  // Leftovers are balanced by Shutdown.
      // Drain eagerly: the whole inbox frees in one go, so a sender
      // blocked on backpressure can always make progress even while this
      // worker waits its turn on the serialization lock below.
      local.swap(state->inbox);
      state->not_full.notify_all();
    }
    for (Item& item : local) {
      {
        std::unique_lock<std::mutex> exec;
        if (serialize_.load(std::memory_order_acquire)) {
          exec = std::unique_lock<std::mutex>(exec_mu_);
        }
        if (item.is_task) {
          item.task();
        } else {
          Deliver(state, std::move(item.msg));
        }
      }
      if (inflight_ != nullptr) inflight_->Done();
    }
  }
}

void ThreadedTransport::Deliver(SiteState* state, Message msg) {
  // Resolve the message's fate when it is popped, mirroring the simulated
  // Network's delivery-time check: a crash or link cut that happened while
  // the message sat in the inbox still drops it.
  bool drop = false;
  bool receiver_down = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cut_links_.count({msg.from, msg.to}) != 0) {
      ++stats_.messages_dropped;
      drop = true;
    } else if (down_sites_.count(msg.to) != 0) {
      ++stats_.messages_dropped;
      drop = true;
      receiver_down = true;
    } else {
      ++stats_.messages_delivered;
    }
  }
  if (drop) {
    if (receiver_down) {
      NBCP_LOG_AT(kDebug, msg.to)
          << "dropped " << msg.ToString() << " (receiver down)";
    }
    if (metrics_ != nullptr) metrics_->counter("net/dropped").Inc();
    if (observer_) observer_(msg, 'x');
    return;
  }
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(state->m);
    handler = state->handler;
  }
  ClockStamp stamp;
  if (clocks_ != nullptr) stamp = clocks_->OnDeliver(msg.to, msg.stamp);
  if (metrics_ != nullptr) {
    metrics_->counter("net/delivered").Inc();
    // LatencyHistogram is thread-compatible, not thread-safe; workers
    // deliver concurrently, so serialize this one recording site.
    std::lock_guard<std::mutex> lock(metrics_mu_);
    metrics_->histogram("net/delay_us").Record(clock_->now() - msg.sent_at);
  }
  if (observer_) observer_(msg, 'd');
  if (schedule_log_ != nullptr) {
    ScheduleRecord record;
    record.kind = 'd';
    record.site = msg.to;
    record.from = msg.from;
    record.msg_type = msg.type;
    record.stamp = stamp;
    schedule_log_->Append(std::move(record));
  }
  handler(msg);
}

void ThreadedTransport::Post(SiteId site, std::function<void()> fn) {
  SiteState* state = FindSite(site);
  if (state == nullptr) {
    fn();  // No worker to defer to; run in the caller's context.
    return;
  }
  if (inflight_ != nullptr) inflight_->Add(1);
  Item item;
  item.is_task = true;
  item.task = std::move(fn);
  Enqueue(state, std::move(item), /*bounded=*/false);
}

void ThreadedTransport::PostSync(SiteId site, std::function<void()> fn) {
  SiteState* state = FindSite(site);
  if (state == nullptr) {
    fn();
    return;
  }
  std::thread::id worker_id;
  {
    std::lock_guard<std::mutex> lock(state->m);
    worker_id = state->worker_id;
  }
  if (worker_id == std::this_thread::get_id()) {
    fn();  // Already on the site's worker; inline keeps us deadlock-free.
    return;
  }
  std::mutex done_m;
  std::condition_variable done_cv;
  bool done = false;
  if (inflight_ != nullptr) inflight_->Add(1);
  Item item;
  item.is_task = true;
  item.task = [&fn, &done_m, &done_cv, &done] {
    fn();
    // Notify while holding the lock: these are the caller's stack
    // variables, and an unlocked notify could still be touching the
    // condition variable after the woken caller has destroyed it.
    std::lock_guard<std::mutex> lock(done_m);
    done = true;
    done_cv.notify_one();
  };
  if (!Enqueue(state, std::move(item), /*bounded=*/false)) {
    fn();  // Worker already stopped; the caller's context is quiescent.
    return;
  }
  std::unique_lock<std::mutex> lock(done_m);
  done_cv.wait(lock, [&done] { return done; });
}

void ThreadedTransport::SetSiteDown(SiteId site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sites_.count(site) != 0) down_sites_.insert(site);
}

void ThreadedTransport::SetSiteUp(SiteId site) {
  std::lock_guard<std::mutex> lock(mu_);
  down_sites_.erase(site);
}

bool ThreadedTransport::IsSiteUp(SiteId site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sites_.count(site) != 0 && down_sites_.count(site) == 0;
}

void ThreadedTransport::CutLink(SiteId a, SiteId b) {
  bool cut = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cut = cut_links_.insert({a, b}).second;
  }
  if (cut && link_observer_) link_observer_(a, b, /*cut=*/true);
}

void ThreadedTransport::RestoreLink(SiteId a, SiteId b) {
  bool restored = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    restored = cut_links_.erase({a, b}) != 0;
  }
  if (restored && link_observer_) link_observer_(a, b, /*cut=*/false);
}

std::vector<SiteId> ThreadedTransport::Sites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SiteId> out;
  out.reserve(sites_.size());
  for (const auto& [id, state] : sites_) out.push_back(id);
  return out;  // std::map iterates ascending.
}

std::vector<SiteId> ThreadedTransport::OperationalSites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SiteId> out;
  for (const auto& [id, state] : sites_) {
    if (down_sites_.count(id) == 0) out.push_back(id);
  }
  return out;
}

NetworkStats ThreadedTransport::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ThreadedTransport::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = NetworkStats{};
}

size_t ThreadedTransport::max_inbox_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_inbox_depth_;
}

void ThreadedTransport::Shutdown() {
  std::vector<SiteState*> states;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    states.reserve(sites_.size());
    for (auto& [id, state] : sites_) states.push_back(state.get());
  }
  for (SiteState* state : states) {
    {
      std::lock_guard<std::mutex> lock(state->m);
      state->stop = true;
    }
    state->not_empty.notify_all();
    state->not_full.notify_all();
  }
  for (SiteState* state : states) {
    if (state->worker.joinable()) state->worker.join();
  }
  size_t leftovers = 0;
  for (SiteState* state : states) {
    std::lock_guard<std::mutex> lock(state->m);
    leftovers += state->inbox.size();
    state->inbox.clear();
  }
  if (inflight_ != nullptr) {
    for (size_t i = 0; i < leftovers; ++i) inflight_->Done();
  }
}

}  // namespace nbcp
