#ifndef NBCP_RUNTIME_INFLIGHT_H_
#define NBCP_RUNTIME_INFLIGHT_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace nbcp {

/// Counts work the threaded runtime still owes: queued inbox items
/// (messages and tasks), handlers currently executing, and pending timers.
/// Shared by WallClock and ThreadedTransport so the driver can wait for
/// quiescence: when the count hits zero, nothing in the runtime can create
/// new work — only the driver can.
///
/// Accounting rule: whoever hands work onward increments for the new work
/// *before* decrementing for the old (timer fires -> dispatch task
/// enqueued -> timer's own count released), so the count never dips to
/// zero while a continuation is still in flight.
class InflightCounter {
 public:
  void Add(int64_t n = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    count_ += n;
  }

  void Done() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--count_ == 0) cv_.notify_all();
  }

  int64_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  /// Blocks until the count reaches zero or `timeout_ms` elapses. Returns
  /// true on quiescence, false on timeout. The zero is not transient: new
  /// runtime-internal work is only ever created while existing work is
  /// still counted.
  bool WaitZero(int64_t timeout_ms) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                        [this] { return count_ == 0; });
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int64_t count_ = 0;
};

}  // namespace nbcp

#endif  // NBCP_RUNTIME_INFLIGHT_H_
