#ifndef NBCP_RUNTIME_THREADED_TRANSPORT_H_
#define NBCP_RUNTIME_THREADED_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/clock.h"
#include "runtime/inflight.h"
#include "runtime/schedule_log.h"
#include "runtime/transport.h"

namespace nbcp {

/// Threaded implementation of the Transport seam: one worker thread per
/// site, each draining a bounded MPSC inbox of messages and tasks.
///
/// Delivery semantics match the simulated Network: sends from a down site
/// fail; a message's fate (delivered vs dropped for cut link / receiver
/// down) is resolved when the receiver *pops* it, not when it is sent; a
/// delivered message merges its causal stamp into the receiver before the
/// handler runs. There is no artificial channel delay — the DelayModel is
/// a property of the simulated network; here latency is whatever the
/// machine provides — and per-channel delivery is FIFO (the inbox is a
/// queue), which is a legal refinement of the paper's asynchronous model.
///
/// Backpressure: an inbox holds at most `inbox_capacity` items; a sender
/// blocks until space frees up. Two exceptions keep the system live: a
/// site enqueueing to itself bypasses the bound (blocking on your own
/// full inbox is a self-deadlock), and tasks (Post/PostSync) bypass it
/// too (they are control-plane: crash injection and timer dispatch must
/// not wait behind data traffic). Mutual sends between two sites with
/// both inboxes full can still deadlock in principle; the default
/// capacity (4096) is far above what any commit protocol round puts in
/// flight.
///
/// Threading contract: everything a handler touches (the participant's
/// protocol state) is only ever executed on the site's own worker thread —
/// messages and dispatched timers arrive through the inbox, and the
/// driver reaches per-site state via PostSync. Tasks run even while the
/// site is marked down; being "down" silences the protocol (messages are
/// dropped), not the machinery around it.
class ThreadedTransport : public Transport {
 public:
  struct Options {
    size_t inbox_capacity = 4096;
  };

  explicit ThreadedTransport(Clock* clock, Options options);
  explicit ThreadedTransport(Clock* clock)
      : ThreadedTransport(clock, Options{}) {}
  ~ThreadedTransport() override;

  ThreadedTransport(const ThreadedTransport&) = delete;
  ThreadedTransport& operator=(const ThreadedTransport&) = delete;

  /// Registers `site` and spawns its worker thread (first registration
  /// only; re-registering swaps the handler).
  Status RegisterSite(SiteId site, Handler handler) override;

  Status Send(Message msg) override;

  void SetSiteDown(SiteId site) override;
  void SetSiteUp(SiteId site) override;
  bool IsSiteUp(SiteId site) const override;
  void CutLink(SiteId a, SiteId b) override;
  void RestoreLink(SiteId a, SiteId b) override;

  std::vector<SiteId> Sites() const override;
  std::vector<SiteId> OperationalSites() const override;

  NetworkStats StatsSnapshot() const override;
  void ResetStats() override;

  void Post(SiteId site, std::function<void()> fn) override;
  void PostSync(SiteId site, std::function<void()> fn) override;

  void set_observer(Observer observer) override {
    observer_ = std::move(observer);
  }
  void set_link_observer(LinkObserver observer) override {
    link_observer_ = std::move(observer);
  }
  void set_metrics(MetricsRegistry* metrics) override { metrics_ = metrics; }
  void set_clocks(CausalClockDomain* clocks) override { clocks_ = clocks; }

  /// Setup-time wiring: queued items and running handlers count here.
  void set_inflight(InflightCounter* inflight) { inflight_ = inflight; }

  /// Serialized-observation mode: workers take one global lock around each
  /// item they process, so every triggering event (delivery, timer, task)
  /// and the trace records of the transition it causes form one atomic
  /// block in any attached TraceRecorder/ScheduleLog — the same
  /// event-at-a-time semantics the simulator has, which cut-based checks
  /// (the global-state observer, conformance) rely on. CommitSystem turns
  /// this on whenever a trace consumer is attached; without one the
  /// workers run fully in parallel.
  void set_serialized(bool on) {
    serialize_.store(on, std::memory_order_release);
  }

  /// Setup-time wiring: deliveries are appended here with causal stamps
  /// (nullptr disables; see ScheduleLog).
  void set_schedule_log(ScheduleLog* log) { schedule_log_ = log; }

  /// High-water mark of any inbox, for the backpressure tests.
  size_t max_inbox_depth() const;

  /// Stops and joins all workers, discarding undrained items. Idempotent;
  /// also run by the destructor.
  void Shutdown();

 private:
  /// One inbox item: a protocol message or a control-plane task.
  struct Item {
    bool is_task = false;
    Message msg;
    std::function<void()> task;
  };

  /// Per-site worker state. Own mutex so senders to different sites do
  /// not contend; heap-allocated so pointers stay stable under map growth.
  struct SiteState {
    explicit SiteState(SiteId id) : site(id) {}

    const SiteId site;
    std::mutex m;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    std::deque<Item> inbox;
    bool stop = false;
    Handler handler;          ///< Written at register time, read by worker.
    std::thread worker;
    std::thread::id worker_id;
  };

  void WorkerLoop(SiteState* state);
  void Deliver(SiteState* state, Message msg);
  /// Enqueues onto `state`'s inbox, honoring the bound unless the caller
  /// is the receiving worker itself or the item is a task. Returns false
  /// (after balancing the inflight counter) if the worker has stopped.
  bool Enqueue(SiteState* state, Item item, bool bounded);
  SiteState* FindSite(SiteId site) const;

  Clock* clock_;
  const size_t inbox_capacity_;

  /// Serialized-observation mode (see set_serialized).
  std::atomic<bool> serialize_{false};
  std::mutex exec_mu_;

  /// Serializes net/delay_us histogram recording (see Deliver).
  std::mutex metrics_mu_;

  mutable std::mutex mu_;
  std::map<SiteId, std::unique_ptr<SiteState>> sites_;
  std::set<SiteId> down_sites_;
  std::set<std::pair<SiteId, SiteId>> cut_links_;
  NetworkStats stats_;
  uint64_t next_seq_ = 0;
  size_t max_inbox_depth_ = 0;
  bool shutdown_ = false;

  // Setup-time wiring; unguarded.
  Observer observer_;
  LinkObserver link_observer_;
  MetricsRegistry* metrics_ = nullptr;
  CausalClockDomain* clocks_ = nullptr;
  InflightCounter* inflight_ = nullptr;
  ScheduleLog* schedule_log_ = nullptr;
};

}  // namespace nbcp

#endif  // NBCP_RUNTIME_THREADED_TRANSPORT_H_
