#ifndef NBCP_RUNTIME_WALL_CLOCK_H_
#define NBCP_RUNTIME_WALL_CLOCK_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>

#include "runtime/clock.h"
#include "runtime/inflight.h"

namespace nbcp {

/// Real-time implementation of the Clock seam for the threaded backend.
///
/// `now()` is microseconds of wall time since construction (steady clock),
/// so SimTime-denominated component timeouts — the 500us failure-detector
/// delay, the 20ms termination collect deadline — mean the same thing they
/// mean in virtual time, just measured by the machine instead of the event
/// queue.
///
/// Timers live in an id-keyed map with a deadline-ordered index,
/// serviced by one dedicated timer thread that sleeps until the earliest
/// deadline; scheduling a timer wakes it only when the new deadline
/// becomes the earliest (protocol deadlines are typically far out and
/// cancelled before firing, so most schedules cost no context switch).
/// When a timer fires, the callback is handed to the dispatcher (wired to
/// ThreadedTransport::Post by ThreadedRuntime) so it runs on the owning
/// site's worker thread — the thread that owns all of that site's protocol
/// state. kTimer firings tick the site's causal clock first, exactly like
/// the simulator. Callbacks without a site (none exist in the protocol
/// stack today) run inline on the timer thread.
///
/// Scheduled timers count toward the shared InflightCounter so the driver's
/// quiescence wait covers "a deadline is still pending" — which is why
/// failure-free runs, whose timers are all cancelled before they fire,
/// must Cancel eagerly (the components already do).
class WallClock : public Clock {
 public:
  using Dispatcher = std::function<void(SiteId, std::function<void()>)>;

  explicit WallClock(uint64_t seed = 42);
  ~WallClock() override;

  WallClock(const WallClock&) = delete;
  WallClock& operator=(const WallClock&) = delete;

  SimTime now() const override;
  Rng& rng() override { return rng_; }

  EventId ScheduleLabeled(SimTime delay, EventLabel label,
                          std::function<void()> fn) override;
  EventId ScheduleLabeledAt(SimTime at, EventLabel label,
                            std::function<void()> fn) override;
  void Cancel(EventId id) override;
  void set_clocks(CausalClockDomain* clocks) override { clocks_ = clocks; }
  bool virtual_time() const override { return false; }

  /// Setup-time wiring: where fired site-owned callbacks run.
  void set_dispatcher(Dispatcher dispatcher) {
    dispatcher_ = std::move(dispatcher);
  }

  /// Setup-time wiring: pending timers count here (not owned).
  void set_inflight(InflightCounter* inflight) { inflight_ = inflight; }

  size_t PendingTimers() const;

  /// Stops the timer thread and drops (cancels) all pending timers.
  /// Idempotent; also run by the destructor.
  void Shutdown();

 private:
  struct Entry {
    SimTime at = 0;
    EventLabel label;
    std::function<void()> fn;
  };

  /// Deadline-ordered view of pending_ (guarded by mu_).
  std::multimap<SimTime, EventId> by_time_;

  void TimerLoop();

  const std::chrono::steady_clock::time_point epoch_;
  Rng rng_;  ///< Driver-thread use only.

  // Setup-time wiring; unguarded.
  CausalClockDomain* clocks_ = nullptr;
  Dispatcher dispatcher_;
  InflightCounter* inflight_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<EventId, Entry> pending_;
  EventId next_id_ = 1;
  bool stop_ = false;

  std::thread timer_thread_;  ///< Started last, joined by Shutdown.
};

}  // namespace nbcp

#endif  // NBCP_RUNTIME_WALL_CLOCK_H_
