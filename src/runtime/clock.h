#ifndef NBCP_RUNTIME_CLOCK_H_
#define NBCP_RUNTIME_CLOCK_H_

#include <functional>
#include <utility>

#include "common/causal_clock.h"
#include "common/rng.h"
#include "common/types.h"
#include "sim/event_queue.h"

namespace nbcp {

/// Time-and-timer seam between the protocol machinery and an execution
/// backend.
///
/// Every component that needs "what time is it" or "call me back in N
/// microseconds" (failure detector, termination deadlines, election and
/// recovery retries, the failure injector) talks to this interface, so the
/// same component runs unchanged on either backend:
///   * Simulator implements it with virtual time — timers are events in
///     the discrete-event queue, `now()` advances only between events;
///   * WallClock (src/runtime/wall_clock.h) implements it with real time —
///     timers fire from a dedicated timer thread and are dispatched to the
///     owning site's worker thread.
///
/// Timer site affinity: ScheduleTimer tags the callback with the site that
/// owns it. The label never affects the simulator's execution (beyond the
/// causal-clock tick every kTimer firing performs), but it is what lets the
/// threaded backend run the callback on the right site thread — per-site
/// protocol state is then only ever touched from one thread.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds: virtual time on the simulator, elapsed
  /// wall-clock time since construction on the threaded backend.
  virtual SimTime now() const = 0;

  /// Seeded deterministic RNG. On the threaded backend this is only
  /// meaningful from the driver thread (nothing inside the runtime draws
  /// from it concurrently).
  virtual Rng& rng() = 0;

  /// Schedules `fn` to run `delay` microseconds from now, tagged with an
  /// exploration/dispatch label (see EventLabel). With a clock domain
  /// attached, a kTimer firing at a site ticks that site's causal clock
  /// before the callback runs.
  virtual EventId ScheduleLabeled(SimTime delay, EventLabel label,
                                  std::function<void()> fn) = 0;

  /// Schedules `fn` at absolute time `at` (clamped to >= now()).
  virtual EventId ScheduleLabeledAt(SimTime at, EventLabel label,
                                    std::function<void()> fn) = 0;

  /// Cancels a scheduled callback. No-op for ids that already fired.
  virtual void Cancel(EventId id) = 0;

  /// Attaches the run's causal clocks (not owned; nullptr detaches).
  virtual void set_clocks(CausalClockDomain* clocks) = 0;

  /// True for the virtual-time simulator backend.
  virtual bool virtual_time() const = 0;

  /// Schedules a site-owned timeout: a kTimer callback that the threaded
  /// backend runs on `site`'s worker thread. This is the call every
  /// protocol-component deadline goes through.
  EventId ScheduleTimer(SimTime delay, SiteId site,
                        std::function<void()> fn) {
    EventLabel label;
    label.cls = EventClass::kTimer;
    label.site = site;
    return ScheduleLabeled(delay, std::move(label), std::move(fn));
  }
};

}  // namespace nbcp

#endif  // NBCP_RUNTIME_CLOCK_H_
