#ifndef NBCP_RUNTIME_RUNTIME_H_
#define NBCP_RUNTIME_RUNTIME_H_

#include <cstdint>

#include "runtime/inflight.h"
#include "runtime/schedule_log.h"
#include "runtime/threaded_transport.h"
#include "runtime/wall_clock.h"

namespace nbcp {

/// The threaded execution backend, assembled: a WallClock whose fired
/// timers dispatch to site workers, a ThreadedTransport with one worker
/// per site, a shared InflightCounter for quiescence, and (optionally) a
/// ScheduleLog capturing the run's scheduling choices for replay.
///
/// CommitSystem owns one of these when SystemConfig::backend is kThreaded
/// and hands its clock()/transport() to the exact same component stack the
/// simulator drives.
class ThreadedRuntime {
 public:
  struct Options {
    uint64_t seed = 42;
    size_t inbox_capacity = 4096;
    bool record_schedule = false;
    int64_t quiesce_timeout_ms = 30000;
  };

  explicit ThreadedRuntime(Options options)
      : options_(options),
        clock_(options.seed),
        transport_(&clock_,
                   ThreadedTransport::Options{options.inbox_capacity}) {
    clock_.set_inflight(&inflight_);
    transport_.set_inflight(&inflight_);
    clock_.set_dispatcher([this](SiteId site, std::function<void()> fn) {
      transport_.Post(site, std::move(fn));
    });
    if (options_.record_schedule) transport_.set_schedule_log(&log_);
  }

  ~ThreadedRuntime() { Shutdown(); }

  ThreadedRuntime(const ThreadedRuntime&) = delete;
  ThreadedRuntime& operator=(const ThreadedRuntime&) = delete;

  WallClock& clock() { return clock_; }
  ThreadedTransport& transport() { return transport_; }
  InflightCounter& inflight() { return inflight_; }

  bool record_schedule() const { return options_.record_schedule; }
  const ScheduleLog& schedule_log() const { return log_; }

  /// Appends a protocol-start choice to the schedule log (the driver calls
  /// this from inside the PostSync that starts the protocol, so the start
  /// is ordered before every delivery it causes).
  void RecordStart(SiteId site, ClockStamp stamp) {
    if (!options_.record_schedule) return;
    ScheduleRecord record;
    record.kind = 's';
    record.site = site;
    record.stamp = std::move(stamp);
    log_.Append(std::move(record));
  }

  /// Blocks until the runtime owes no work: empty inboxes, idle handlers,
  /// no pending timers. Returns false on timeout (the run is wedged or
  /// still legitimately blocked on a deadline that keeps re-arming).
  bool WaitQuiescent() {
    return inflight_.WaitZero(options_.quiesce_timeout_ms);
  }

  /// Stops timers first (no new dispatches), then the workers. Idempotent.
  void Shutdown() {
    clock_.Shutdown();
    transport_.Shutdown();
  }

 private:
  const Options options_;
  InflightCounter inflight_;
  ScheduleLog log_;
  WallClock clock_;
  ThreadedTransport transport_;
};

}  // namespace nbcp

#endif  // NBCP_RUNTIME_RUNTIME_H_
