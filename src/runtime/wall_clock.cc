#include "runtime/wall_clock.h"

#include <utility>

namespace nbcp {

WallClock::WallClock(uint64_t seed)
    : epoch_(std::chrono::steady_clock::now()), rng_(seed) {
  timer_thread_ = std::thread([this] { TimerLoop(); });
}

WallClock::~WallClock() { Shutdown(); }

SimTime WallClock::now() const {
  return static_cast<SimTime>(std::chrono::duration_cast<std::chrono::microseconds>(
                                  std::chrono::steady_clock::now() - epoch_)
                                  .count());
}

EventId WallClock::ScheduleLabeled(SimTime delay, EventLabel label,
                                   std::function<void()> fn) {
  return ScheduleLabeledAt(now() + delay, std::move(label), std::move(fn));
}

EventId WallClock::ScheduleLabeledAt(SimTime at, EventLabel label,
                                     std::function<void()> fn) {
  // Count the timer before it becomes visible to the timer thread, so the
  // inflight count can never dip to zero while the timer is pending.
  if (inflight_ != nullptr) inflight_->Add(1);
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) {
    if (inflight_ != nullptr) inflight_->Done();
    return 0;
  }
  EventId id = next_id_++;
  pending_.emplace(id, Entry{at, std::move(label), std::move(fn)});
  const bool new_earliest = by_time_.empty() || at < by_time_.begin()->first;
  by_time_.emplace(at, id);
  // Only a new earliest deadline moves the timer thread's wake-up time;
  // anything later is already covered by its current wait_until.
  if (new_earliest) cv_.notify_one();
  return id;
}

void WallClock::Cancel(EventId id) {
  bool erased = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(id);
    if (it != pending_.end()) {
      auto [lo, hi] = by_time_.equal_range(it->second.at);
      for (auto bt = lo; bt != hi; ++bt) {
        if (bt->second == id) {
          by_time_.erase(bt);
          break;
        }
      }
      pending_.erase(it);
      erased = true;
      // No notify: the timer thread at worst wakes at the cancelled
      // deadline, sees nothing due, and re-sleeps.
    }
  }
  if (erased && inflight_ != nullptr) inflight_->Done();
}

size_t WallClock::PendingTimers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

void WallClock::TimerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (pending_.empty()) {
      cv_.wait(lock);
      continue;
    }
    auto first = by_time_.begin();
    if (first->first > now()) {
      cv_.wait_until(lock, epoch_ + std::chrono::microseconds(first->first));
      continue;  // Re-evaluate: an earlier timer, a Cancel, or Shutdown.
    }
    auto best = pending_.find(first->second);
    Entry entry = std::move(best->second);
    pending_.erase(best);
    by_time_.erase(first);
    lock.unlock();

    std::function<void()> fn = std::move(entry.fn);
    if (clocks_ != nullptr && entry.label.cls == EventClass::kTimer &&
        entry.label.site != kNoSite) {
      // Same rule as the simulator: a timer is a local event, so its
      // callback runs on post-tick clocks.
      fn = [clocks = clocks_, site = entry.label.site,
            inner = std::move(fn)]() {
        clocks->OnLocal(site);
        inner();
      };
    }
    if (dispatcher_ && entry.label.site != kNoSite) {
      // Hand the callback to the owning site's worker. The dispatcher
      // counts the new task before this timer's count is released.
      dispatcher_(entry.label.site, std::move(fn));
    } else {
      fn();
    }
    if (inflight_ != nullptr) inflight_->Done();

    lock.lock();
  }
}

void WallClock::Shutdown() {
  size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
    dropped = pending_.size();
    pending_.clear();
    by_time_.clear();
    cv_.notify_all();
  }
  if (timer_thread_.joinable()) timer_thread_.join();
  if (inflight_ != nullptr) {
    for (size_t i = 0; i < dropped; ++i) inflight_->Done();
  }
}

}  // namespace nbcp
