#ifndef NBCP_RUNTIME_TRANSPORT_H_
#define NBCP_RUNTIME_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/causal_clock.h"
#include "common/status.h"
#include "common/types.h"
#include "net/message.h"

namespace nbcp {

class MetricsRegistry;

/// Counters describing all traffic seen by a transport.
struct NetworkStats {
  uint64_t messages_sent = 0;       ///< Send() calls accepted.
  uint64_t messages_delivered = 0;  ///< Handed to a live receiver.
  uint64_t messages_dropped = 0;    ///< Receiver down or link cut.
  uint64_t bytes_sent = 0;          ///< Sum of payload sizes.
};

/// Messaging seam between the protocol machinery and an execution backend.
///
/// The protocol engine, participants, election, termination, recovery and
/// the failure injector all speak to this interface; two implementations
/// exist:
///   * Network (src/net/network.h) — the discrete-event simulation, where
///     delivery is an event scheduled after a sampled channel delay;
///   * ThreadedTransport (src/runtime/threaded_transport.h) — one worker
///     thread per site draining a bounded MPSC inbox, with real
///     backpressure on senders.
///
/// Both share the paper's failure semantics: sends from a down site fail,
/// messages to a down/unknown receiver or across a cut link are silently
/// dropped at delivery time, and delivery merges the message's causal
/// stamp into the receiver before the handler runs.
class Transport {
 public:
  using Handler = std::function<void(const Message&)>;

  /// Optional traffic observer: phase is 's' (accepted for sending),
  /// 'd' (delivered to the receiver) or 'x' (dropped: receiver down or
  /// link cut). Used by the trace recorder.
  using Observer = std::function<void(const Message&, char phase)>;

  /// Optional link-topology observer: invoked on CutLink (cut = true) and
  /// RestoreLink (cut = false).
  using LinkObserver = std::function<void(SiteId a, SiteId b, bool cut)>;

  virtual ~Transport() = default;

  /// Registers `site` with a delivery handler. A site must be registered
  /// before it can send or receive. Registering marks the site operational.
  virtual Status RegisterSite(SiteId site, Handler handler) = 0;

  /// Sends `msg`. Fails if the sender is not registered or is down. A
  /// down/unknown *receiver* does not fail the send — the message is
  /// silently dropped at delivery time, as a real network cannot refuse a
  /// send to a crashed host.
  virtual Status Send(Message msg) = 0;

  /// Sends copies of `msg` to every site in `targets` (msg.to overwritten).
  virtual Status Broadcast(const Message& msg,
                           const std::vector<SiteId>& targets) {
    for (SiteId target : targets) {
      Message copy = msg;
      copy.to = target;
      Status s = Send(std::move(copy));
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  /// Marks a site crashed: its pending inbound messages are dropped at
  /// delivery time and future sends to it are dropped.
  virtual void SetSiteDown(SiteId site) = 0;

  /// Marks a site operational again (after recovery).
  virtual void SetSiteUp(SiteId site) = 0;

  virtual bool IsSiteUp(SiteId site) const = 0;

  /// Severs the directed link a->b (extension studies only).
  virtual void CutLink(SiteId a, SiteId b) = 0;

  /// Restores the directed link a->b.
  virtual void RestoreLink(SiteId a, SiteId b) = 0;

  /// All registered sites, ascending.
  virtual std::vector<SiteId> Sites() const = 0;

  /// All registered sites currently operational, ascending.
  virtual std::vector<SiteId> OperationalSites() const = 0;

  /// By-value snapshot of the traffic counters, safe under concurrency.
  virtual NetworkStats StatsSnapshot() const = 0;

  virtual void ResetStats() = 0;

  /// Runs `fn` in `site`'s execution context without waiting for it. On
  /// the simulator backend the execution context IS the caller, so this
  /// runs `fn` inline; on the threaded backend it enqueues `fn` on the
  /// site's worker thread (tasks run even while the site is marked down —
  /// being "down" silences the protocol, not the machinery around it).
  virtual void Post(SiteId site, std::function<void()> fn) = 0;

  /// Runs `fn` in `site`'s execution context and waits for completion.
  /// Inline on the simulator; on the threaded backend it enqueues and
  /// blocks (running inline when already on the site's own worker, so a
  /// site may PostSync to itself). This is how the driver touches per-site
  /// protocol state — StartProtocol, SetVote, Crash — without racing the
  /// site's worker.
  virtual void PostSync(SiteId site, std::function<void()> fn) = 0;

  // Setup-time wiring (call before traffic starts; not owned, nullptr
  // detaches where applicable).
  virtual void set_observer(Observer observer) = 0;
  virtual void set_link_observer(LinkObserver observer) = 0;

  /// Attaches a metrics registry: traffic counters ("net/sent",
  /// "net/delivered", "net/dropped") and the send-to-delivery delay
  /// histogram ("net/delay_us").
  virtual void set_metrics(MetricsRegistry* metrics) = 0;

  /// Attaches the run's causal clocks. When set, Send ticks the sender and
  /// stamps the message, and delivery merges the message's stamp into the
  /// receiver before the handler runs — so every handler (and everything
  /// it records) observes post-merge clocks. Dropped messages merge
  /// nothing: a crashed receiver learned nothing.
  virtual void set_clocks(CausalClockDomain* clocks) = 0;
};

}  // namespace nbcp

#endif  // NBCP_RUNTIME_TRANSPORT_H_
