#ifndef NBCP_NBCP_H_
#define NBCP_NBCP_H_

/// \file
/// Umbrella header for the nbcp library — everything a downstream user
/// needs, grouped by layer. Include individual headers instead when
/// compile time matters.
///
/// Layers (see README.md for the architecture overview):
///  * formal model + analysis: define commit protocols as FSAs, build
///    reachable state graphs, compute concurrency sets, check the
///    Fundamental Nonblocking Theorem, synthesize buffer states;
///  * runtime: run those same protocol specs over a simulated n-site
///    distributed database with failure injection, elections, the
///    termination protocol and crash recovery;
///  * tooling: text-format protocol specs, tracing, workloads.

// Common kernel.
#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"

// Formal model.
#include "fsa/automaton.h"
#include "fsa/dot_export.h"
#include "fsa/protocol_spec.h"
#include "fsa/spec_parser.h"
#include "fsa/state.h"
#include "fsa/transition.h"

// Analysis engine.
#include "analysis/buffer_synthesis.h"
#include "analysis/concurrency_set.h"
#include "analysis/failure_graph.h"
#include "analysis/global_state.h"
#include "analysis/nonblocking.h"
#include "analysis/recovery_analysis.h"
#include "analysis/resiliency.h"
#include "analysis/state_graph.h"
#include "analysis/synchronicity.h"
#include "analysis/termination_validation.h"

// Protocols and the interpreting engine.
#include "protocols/engine.h"
#include "protocols/protocols.h"
#include "protocols/registry.h"

// Simulation substrate.
#include "net/failure_detector.h"
#include "net/message.h"
#include "net/network.h"
#include "sim/simulator.h"

// Local atomicity substrate.
#include "db/kv_store.h"
#include "db/local_transaction.h"
#include "db/lock_manager.h"
#include "db/wal.h"

// Coordination.
#include "election/bully.h"
#include "election/ring.h"
#include "recovery/dt_log.h"
#include "recovery/recovery_manager.h"
#include "termination/backup_coordinator.h"
#include "termination/termination.h"

// System facade.
#include "core/failure_injector.h"
#include "core/metrics.h"
#include "core/participant.h"
#include "core/transaction_manager.h"
#include "core/workload.h"
#include "trace/trace.h"

#endif  // NBCP_NBCP_H_
