#ifndef NBCP_ELECTION_BULLY_H_
#define NBCP_ELECTION_BULLY_H_

#include <memory>
#include <unordered_map>

#include "election/election.h"
#include "runtime/clock.h"
#include "runtime/transport.h"

namespace nbcp {

/// Garcia-Molina's bully election: a candidate challenges all higher-id
/// sites; a higher-id site that answers takes over; a candidate hearing no
/// answer within the timeout declares itself leader and announces to all.
///
/// Message types: "bully:election", "bully:answer", "bully:leader"
/// (Message::txn carries the election tag).
class BullyElection : public Election {
 public:
  BullyElection(SiteId self, Clock* clock, Transport* network,
                AliveFn alive_sites, ElectedCallback on_elected,
                ElectionConfig config = {});

  void StartElection(TransactionId tag) override;
  void OnMessage(const Message& message) override;
  void Reset(TransactionId tag) override;
  void Clear() override;

  /// True for message types this algorithm owns.
  static bool OwnsMessage(const std::string& type);

 private:
  struct Round {
    bool running = false;        ///< This site is an active candidate.
    bool answered = false;       ///< A higher site answered our challenge.
    bool done = false;
    SiteId leader = kNoSite;
    EventId declare_timer = 0;   ///< Self-declare when it fires unanswered.
    EventId takeover_timer = 0;  ///< Restart if the answerer goes silent.
  };

  void Send(SiteId to, const std::string& type, TransactionId tag,
            std::string payload = "");
  void DeclareSelf(TransactionId tag);
  void FinishRound(TransactionId tag, SiteId leader);

  SiteId self_;
  Clock* clock_;
  Transport* network_;
  AliveFn alive_;
  ElectedCallback on_elected_;
  ElectionConfig config_;
  std::unordered_map<TransactionId, Round> rounds_;

  /// Liveness token: scheduled timers hold a weak reference and become
  /// no-ops once this object is destroyed (e.g. its site crashed).
  std::shared_ptr<char> alive_token_ = std::make_shared<char>(0);
};

}  // namespace nbcp

#endif  // NBCP_ELECTION_BULLY_H_
