#include "election/ring.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "obs/metrics_registry.h"

namespace nbcp {
namespace {
const char kToken[] = "ring:token";
const char kLeader[] = "ring:leader";

std::vector<SiteId> ParseIds(const std::string& payload) {
  std::vector<SiteId> out;
  std::stringstream in(payload);
  std::string part;
  while (std::getline(in, part, ',')) {
    if (!part.empty()) out.push_back(static_cast<SiteId>(std::stoul(part)));
  }
  return out;
}

std::string JoinIds(const std::vector<SiteId>& ids) {
  std::ostringstream out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out << ',';
    out << ids[i];
  }
  return out.str();
}

}  // namespace

RingElection::RingElection(SiteId self, Clock* clock, Transport* network,
                           AliveFn alive_sites, ElectedCallback on_elected,
                           ElectionConfig config)
    : self_(self),
      clock_(clock),
      network_(network),
      alive_(std::move(alive_sites)),
      on_elected_(std::move(on_elected)),
      config_(config) {}

bool RingElection::OwnsMessage(const std::string& type) {
  return type.rfind("ring:", 0) == 0;
}

SiteId RingElection::NextAlive(SiteId from) const {
  std::vector<SiteId> alive = alive_();
  if (alive.empty()) return from;
  // First alive id strictly greater, else wrap to the smallest.
  for (SiteId site : alive) {
    if (site > from) return site;
  }
  return alive.front();
}

void RingElection::SendToken(TransactionId tag, const std::string& ids) {
  SiteId next = NextAlive(self_);
  Message m;
  m.type = kToken;
  m.from = self_;
  m.to = next;
  m.txn = tag;
  m.payload = ids;
  (void)network_->Send(std::move(m));
}

void RingElection::StartElection(TransactionId tag) {
  Round& round = rounds_[tag];
  if (round.done) return;
  if (!round.initiated && metrics_ != nullptr) {
    metrics_->counter("election/started").Inc();
  }
  round.initiated = true;

  SiteId next = NextAlive(self_);
  if (next == self_) {
    FinishRound(tag, self_);
    return;
  }
  SendToken(tag, std::to_string(self_));
  // Restart if the token is lost to a crash mid-circulation.
  if (round.retry_timer != 0) clock_->Cancel(round.retry_timer);
  round.retry_timer = clock_->ScheduleTimer(
      config_.response_timeout * (alive_().size() + 1), self_,
      [this, tag, token = std::weak_ptr<char>(alive_token_)]() {
        if (token.expired()) return;
        Round& r = rounds_[tag];
        if (r.done) return;
        r.initiated = false;
        StartElection(tag);
      });
}

void RingElection::AnnounceLeader(TransactionId tag, SiteId leader,
                                  SiteId stop_at) {
  SiteId next = NextAlive(self_);
  if (next != stop_at && next != self_) {
    Message m;
    m.type = kLeader;
    m.from = self_;
    m.to = next;
    m.txn = tag;
    m.payload = std::to_string(leader) + ";" + std::to_string(stop_at);
    (void)network_->Send(std::move(m));
  }
  FinishRound(tag, leader);
}

void RingElection::FinishRound(TransactionId tag, SiteId leader) {
  Round& round = rounds_[tag];
  if (round.done) return;
  if (round.retry_timer != 0) clock_->Cancel(round.retry_timer);
  round.done = true;
  round.leader = leader;
  if (metrics_ != nullptr) metrics_->counter("election/won").Inc();
  NBCP_LOG_AT(kDebug, self_) << "ring round " << tag << " elected " << leader;
  if (on_elected_) on_elected_(tag, leader);
}

void RingElection::OnMessage(const Message& message) {
  TransactionId tag = message.txn;
  if (message.type == kToken) {
    std::vector<SiteId> ids = ParseIds(message.payload);
    if (std::find(ids.begin(), ids.end(), self_) != ids.end()) {
      // Token completed the circuit: the highest collected id wins.
      SiteId leader = *std::max_element(ids.begin(), ids.end());
      AnnounceLeader(tag, leader, /*stop_at=*/self_);
      return;
    }
    ids.push_back(self_);
    SendToken(tag, JoinIds(ids));
    return;
  }
  if (message.type == kLeader) {
    // payload = "<leader>;<initiator>".
    auto sep = message.payload.find(';');
    SiteId leader =
        static_cast<SiteId>(std::stoul(message.payload.substr(0, sep)));
    SiteId stop_at =
        static_cast<SiteId>(std::stoul(message.payload.substr(sep + 1)));
    AnnounceLeader(tag, leader, stop_at);
    return;
  }
}

void RingElection::Reset(TransactionId tag) {
  auto it = rounds_.find(tag);
  if (it == rounds_.end()) return;
  if (it->second.retry_timer != 0) clock_->Cancel(it->second.retry_timer);
  rounds_.erase(it);
}

void RingElection::Clear() { rounds_.clear(); }

}  // namespace nbcp
