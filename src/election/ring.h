#ifndef NBCP_ELECTION_RING_H_
#define NBCP_ELECTION_RING_H_

#include <memory>
#include <unordered_map>

#include "election/election.h"
#include "runtime/clock.h"
#include "runtime/transport.h"

namespace nbcp {

/// Chang-Roberts-style ring election: the candidate list circulates around
/// the logical ring of operational sites (ordered by id); when the token
/// returns to its initiator, the highest collected id is announced as
/// leader with a second circulation.
///
/// Message types: "ring:token" (payload = comma-separated collected ids)
/// and "ring:leader" (payload = leader id). Message::txn carries the tag.
class RingElection : public Election {
 public:
  RingElection(SiteId self, Clock* clock, Transport* network,
               AliveFn alive_sites, ElectedCallback on_elected,
               ElectionConfig config = {});

  void StartElection(TransactionId tag) override;
  void OnMessage(const Message& message) override;
  void Reset(TransactionId tag) override;
  void Clear() override;

  static bool OwnsMessage(const std::string& type);

 private:
  struct Round {
    bool initiated = false;
    bool done = false;
    SiteId leader = kNoSite;
    EventId retry_timer = 0;
  };

  /// The operational site following `from` on the ring.
  SiteId NextAlive(SiteId from) const;

  void SendToken(TransactionId tag, const std::string& ids);
  void AnnounceLeader(TransactionId tag, SiteId leader, SiteId stop_at);
  void FinishRound(TransactionId tag, SiteId leader);

  SiteId self_;
  Clock* clock_;
  Transport* network_;
  AliveFn alive_;
  ElectedCallback on_elected_;
  ElectionConfig config_;
  std::unordered_map<TransactionId, Round> rounds_;

  /// Liveness token: scheduled timers hold a weak reference and become
  /// no-ops once this object is destroyed (e.g. its site crashed).
  std::shared_ptr<char> alive_token_ = std::make_shared<char>(0);
};

}  // namespace nbcp

#endif  // NBCP_ELECTION_RING_H_
