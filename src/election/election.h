#ifndef NBCP_ELECTION_ELECTION_H_
#define NBCP_ELECTION_ELECTION_H_

#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/message.h"

namespace nbcp {

class MetricsRegistry;

/// Configuration shared by the election algorithms.
struct ElectionConfig {
  /// How long to wait for a response before assuming silence, in simulated
  /// microseconds. Should exceed one network round trip.
  SimTime response_timeout = 5000;
};

/// Interface of a distributed election mechanism used to choose the backup
/// coordinator of the termination protocol ("any distributed election
/// mechanism can be used").
///
/// Elections are scoped by a tag (the transaction id being terminated) so
/// that concurrent terminations do not interfere.
class Election {
 public:
  /// (tag, elected leader).
  using ElectedCallback = std::function<void(TransactionId, SiteId)>;
  /// Returns currently operational sites, ascending (from the failure
  /// detector's perspective at this site).
  using AliveFn = std::function<std::vector<SiteId>()>;

  virtual ~Election() = default;

  /// Begins an election for `tag`. Idempotent while one is running.
  virtual void StartElection(TransactionId tag) = 0;

  /// Feeds an election message (the owner routes by type prefix).
  virtual void OnMessage(const Message& message) = 0;

  /// Forgets any finished or in-flight round for `tag` so a fresh election
  /// can run (used when the elected leader subsequently fails).
  virtual void Reset(TransactionId tag) = 0;

  /// Drops all in-progress election state (site crash).
  virtual void Clear() = 0;

  /// Attaches a metrics registry (not owned; nullptr detaches). Concrete
  /// algorithms count rounds started ("election/started") and decided
  /// ("election/won").
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

 protected:
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace nbcp

#endif  // NBCP_ELECTION_ELECTION_H_
