#include "election/bully.h"

#include "common/logging.h"
#include "obs/metrics_registry.h"

namespace nbcp {
namespace {
const char kElection[] = "bully:election";
const char kAnswer[] = "bully:answer";
const char kLeader[] = "bully:leader";
}  // namespace

BullyElection::BullyElection(SiteId self, Clock* clock, Transport* network,
                             AliveFn alive_sites, ElectedCallback on_elected,
                             ElectionConfig config)
    : self_(self),
      clock_(clock),
      network_(network),
      alive_(std::move(alive_sites)),
      on_elected_(std::move(on_elected)),
      config_(config) {}

bool BullyElection::OwnsMessage(const std::string& type) {
  return type.rfind("bully:", 0) == 0;
}

void BullyElection::Send(SiteId to, const std::string& type,
                         TransactionId tag, std::string payload) {
  Message m;
  m.type = type;
  m.from = self_;
  m.to = to;
  m.txn = tag;
  m.payload = std::move(payload);
  (void)network_->Send(std::move(m));
}

void BullyElection::StartElection(TransactionId tag) {
  Round& round = rounds_[tag];
  if (round.running || round.done) return;
  round.running = true;
  round.answered = false;
  if (metrics_ != nullptr) metrics_->counter("election/started").Inc();

  bool challenged_anyone = false;
  for (SiteId site : alive_()) {
    if (site > self_) {
      Send(site, kElection, tag);
      challenged_anyone = true;
    }
  }
  if (!challenged_anyone) {
    // Highest operational id: win immediately.
    DeclareSelf(tag);
    return;
  }
  round.declare_timer = clock_->ScheduleTimer(
      config_.response_timeout, self_,
      [this, tag, token = std::weak_ptr<char>(alive_token_)]() {
        if (token.expired()) return;
        Round& r = rounds_[tag];
        if (r.done || r.answered) return;
        DeclareSelf(tag);
      });
}

void BullyElection::DeclareSelf(TransactionId tag) {
  Round& round = rounds_[tag];
  if (round.done) return;
  for (SiteId site : alive_()) {
    if (site != self_) Send(site, kLeader, tag, std::to_string(self_));
  }
  FinishRound(tag, self_);
}

void BullyElection::FinishRound(TransactionId tag, SiteId leader) {
  Round& round = rounds_[tag];
  if (round.done) return;
  if (round.declare_timer != 0) clock_->Cancel(round.declare_timer);
  if (round.takeover_timer != 0) clock_->Cancel(round.takeover_timer);
  round.done = true;
  round.running = false;
  round.leader = leader;
  if (metrics_ != nullptr) metrics_->counter("election/won").Inc();
  NBCP_LOG_AT(kDebug, self_) << "bully round " << tag << " elected "
                             << leader;
  if (on_elected_) on_elected_(tag, leader);
}

void BullyElection::OnMessage(const Message& message) {
  TransactionId tag = message.txn;
  if (message.type == kElection) {
    Round& round = rounds_[tag];
    if (round.done) {
      // We already know this round's winner (e.g. the challenger was on
      // the other side of a healed partition, or reset its round): tell it
      // directly instead of answering — an answer would leave it waiting
      // for a leader announcement that will never come.
      Send(message.from, kLeader, tag, std::to_string(round.leader));
      return;
    }
    // A lower site challenged us: answer and take over the election.
    Send(message.from, kAnswer, tag);
    if (!round.running) StartElection(tag);
    return;
  }
  if (message.type == kAnswer) {
    Round& round = rounds_[tag];
    if (round.done) return;
    round.answered = true;
    if (round.declare_timer != 0) clock_->Cancel(round.declare_timer);
    // The higher site took over; if it crashes before announcing a leader,
    // restart.
    round.takeover_timer = clock_->ScheduleTimer(
        3 * config_.response_timeout, self_,
        [this, tag, token = std::weak_ptr<char>(alive_token_)]() {
          if (token.expired()) return;
          Round& r = rounds_[tag];
          if (r.done) return;
          r.running = false;
          r.answered = false;
          StartElection(tag);
        });
    return;
  }
  if (message.type == kLeader) {
    // The payload names the leader (usually the sender itself; a relayed
    // announcement after a partition heal may name a third site).
    SiteId leader = message.payload.empty()
                        ? message.from
                        : static_cast<SiteId>(std::stoul(message.payload));
    Round& round = rounds_[tag];
    if (round.done && round.leader == leader) return;
    round.done = false;  // Accept the (possibly newer) announcement.
    FinishRound(tag, leader);
    return;
  }
}

void BullyElection::Reset(TransactionId tag) {
  auto it = rounds_.find(tag);
  if (it == rounds_.end()) return;
  if (it->second.declare_timer != 0) clock_->Cancel(it->second.declare_timer);
  if (it->second.takeover_timer != 0) clock_->Cancel(it->second.takeover_timer);
  rounds_.erase(it);
}

void BullyElection::Clear() { rounds_.clear(); }

}  // namespace nbcp
