#ifndef NBCP_SIM_EVENT_QUEUE_H_
#define NBCP_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace nbcp {

/// Handle identifying a scheduled event; usable to cancel it.
using EventId = uint64_t;

/// Time-ordered queue of simulation events.
///
/// Events at equal timestamps fire in scheduling order (FIFO), which keeps
/// runs deterministic. Cancellation is lazy: cancelled ids are skipped when
/// popped.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` at absolute time `at`. Returns a cancellation handle.
  EventId Push(SimTime at, std::function<void()> fn);

  /// Cancels a previously scheduled event. Safe to call on ids that already
  /// fired (no effect).
  void Cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  bool Empty();

  /// Time of the earliest live event. Requires !Empty().
  SimTime NextTime();

  /// Removes and returns the earliest live event's callback, setting
  /// `*time` to its timestamp. Requires !Empty().
  std::function<void()> Pop(SimTime* time);

  /// Number of live events (after discarding cancelled heads).
  size_t Size();

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Drops cancelled entries from the head of the heap.
  void SkipCancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  size_t live_count_ = 0;
};

}  // namespace nbcp

#endif  // NBCP_SIM_EVENT_QUEUE_H_
