#ifndef NBCP_SIM_EVENT_QUEUE_H_
#define NBCP_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"

namespace nbcp {

/// Handle identifying a scheduled event; usable to cancel it.
using EventId = uint64_t;

/// Coarse classification of a scheduled event, used by schedule exploration
/// to tell externally meaningful choice points (message deliveries, protocol
/// starts, injected crashes) apart from bookkeeping callbacks and timers.
enum class EventClass : uint8_t {
  kInternal = 0,  ///< Unlabeled callback (default for plain Push).
  kTimer = 1,     ///< Timeout/periodic callback (detector reports, deadlines).
  kDelivery = 2,  ///< Network message delivery at a receiver site.
  kStart = 3,     ///< Protocol start (the model's virtual __request).
  kCrash = 4,     ///< Injected site crash (scheduled by an explorer).
};

/// Metadata attached to a scheduled event. Only meaningful fields are set:
/// deliveries carry receiver/sender/type/seq, starts carry the started site,
/// crashes carry the crashed site. The label never affects execution; it
/// exists so a ScheduleStrategy can identify events across re-executions.
struct EventLabel {
  EventClass cls = EventClass::kInternal;
  SiteId site = kNoSite;   ///< Receiver (delivery) / acting site (start/crash).
  SiteId from = kNoSite;   ///< Sender site for deliveries.
  TransactionId txn = kNoTransaction;
  std::string msg_type;    ///< Message type for deliveries.
  uint64_t seq = 0;        ///< Network sequence number for deliveries.
};

/// A live queue entry as seen by Pending(): enough to identify and fire it.
struct PendingEvent {
  EventId id = 0;
  SimTime time = 0;
  EventLabel label;
};

/// Time-ordered queue of simulation events.
///
/// Ordering contract: events pop in ascending `SimTime`; events with equal
/// `SimTime` pop in scheduling order (FIFO), enforced by a monotonically
/// increasing per-queue sequence number assigned at Push. This total order
/// is deterministic and independent of cancellation history, which makes
/// recorded schedules replayable.
///
/// Storage: live entries live in an id-indexed map; a (time, seq, id) heap
/// provides time order. Cancellation and PopById remove the map entry and
/// leave a stale heap node behind, which Pop/NextTime lazily skip. Cancel on
/// an id that already fired (or never existed) is a strict no-op.
///
/// Thread safety: every operation takes mu_, so concurrent producers (timer
/// threads, network delivery threads) may Push/Cancel against a consumer
/// loop. Callbacks are *returned* to the caller, never invoked under the
/// lock — the consumer runs them lock-free.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` at absolute time `at`. Returns a cancellation handle.
  EventId Push(SimTime at, std::function<void()> fn);

  /// Schedules `fn` at absolute time `at` with an exploration label.
  EventId Push(SimTime at, EventLabel label, std::function<void()> fn);

  /// Cancels a pending event. No effect on ids that already fired, were
  /// already cancelled, or were never issued.
  void Cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  bool Empty() const NBCP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return live_.empty();
  }

  /// Time of the earliest live event. Requires !Empty().
  SimTime NextTime();

  /// Removes and returns the earliest live event's callback, setting
  /// `*time` to its timestamp. Requires !Empty().
  std::function<void()> Pop(SimTime* time);

  /// Removes and returns the callback of the live event `id`, setting
  /// `*time` to its timestamp. Returns an empty function if `id` is not
  /// pending (already fired, cancelled, or unknown).
  std::function<void()> PopById(EventId id, SimTime* time);

  /// True when `id` is still pending.
  bool Contains(EventId id) const NBCP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return live_.count(id) != 0;
  }

  /// Number of live events.
  size_t Size() const NBCP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return live_.size();
  }

  /// Snapshot of all live events in pop order (time, then scheduling seq).
  std::vector<PendingEvent> Pending() const;

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    EventLabel label;
    std::function<void()> fn;
  };
  struct HeapItem {
    SimTime time;
    uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Drops heap nodes whose entry is gone (cancelled or popped by id).
  void SkipDead() NBCP_REQUIRES(mu_);

  mutable Mutex mu_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, Later> heap_
      NBCP_GUARDED_BY(mu_);
  std::unordered_map<EventId, Entry> live_ NBCP_GUARDED_BY(mu_);
  uint64_t next_seq_ NBCP_GUARDED_BY(mu_) = 0;
  EventId next_id_ NBCP_GUARDED_BY(mu_) = 1;
};

}  // namespace nbcp

#endif  // NBCP_SIM_EVENT_QUEUE_H_
