#include "sim/simulator.h"

namespace nbcp {

size_t Simulator::Run(size_t max_events) {
  size_t executed = 0;
  while (executed < max_events && !queue_.Empty()) {
    SimTime t;
    auto fn = queue_.Pop(&t);
    now_ = t;
    fn();
    ++executed;
    ++stats_.events_executed;
  }
  return executed;
}

size_t Simulator::RunUntil(SimTime until) {
  size_t executed = 0;
  while (!queue_.Empty() && queue_.NextTime() <= until) {
    SimTime t;
    auto fn = queue_.Pop(&t);
    now_ = t;
    fn();
    ++executed;
    ++stats_.events_executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

bool Simulator::Step() {
  if (queue_.Empty()) return false;
  SimTime t;
  auto fn = queue_.Pop(&t);
  now_ = t;
  fn();
  ++stats_.events_executed;
  return true;
}

}  // namespace nbcp
