#include "sim/simulator.h"

#include "sim/schedule.h"

namespace nbcp {

size_t Simulator::Run(size_t max_events) {
  size_t executed = 0;
  while (executed < max_events && !queue_.Empty()) {
    SimTime t;
    auto fn = queue_.Pop(&t);
    now_ = t;
    fn();
    ++executed;
    ++stats_.events_executed;
  }
  return executed;
}

size_t Simulator::RunUntil(SimTime until) {
  size_t executed = 0;
  while (!queue_.Empty() && queue_.NextTime() <= until) {
    SimTime t;
    auto fn = queue_.Pop(&t);
    now_ = t;
    fn();
    ++executed;
    ++stats_.events_executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

size_t Simulator::RunControlled(ScheduleStrategy& strategy,
                                size_t max_events) {
  size_t executed = 0;
  while (executed < max_events && !queue_.Empty()) {
    EventId choice = strategy.ChooseNext(*this, queue_.Pending());
    if (choice == kStopRun) break;
    SimTime t;
    std::function<void()> fn;
    if (choice == 0) {
      fn = queue_.Pop(&t);
    } else {
      fn = queue_.PopById(choice, &t);
      if (!fn) break;  // Strategy picked a dead id; nothing sane to fire.
    }
    if (t > now_) now_ = t;
    fn();
    ++executed;
    ++stats_.events_executed;
  }
  return executed;
}

bool Simulator::FireEvent(EventId id) {
  SimTime t;
  auto fn = queue_.PopById(id, &t);
  if (!fn) return false;
  if (t > now_) now_ = t;
  fn();
  ++stats_.events_executed;
  return true;
}

bool Simulator::Step() {
  if (queue_.Empty()) return false;
  SimTime t;
  auto fn = queue_.Pop(&t);
  now_ = t;
  fn();
  ++stats_.events_executed;
  return true;
}

}  // namespace nbcp
