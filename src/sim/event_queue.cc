#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace nbcp {

EventId EventQueue::Push(SimTime at, std::function<void()> fn) {
  return Push(at, EventLabel{}, std::move(fn));
}

EventId EventQueue::Push(SimTime at, EventLabel label, std::function<void()> fn) {
  MutexLock lock(&mu_);
  EventId id = next_id_++;
  uint64_t seq = next_seq_++;
  live_.emplace(id, Entry{at, seq, std::move(label), std::move(fn)});
  heap_.push(HeapItem{at, seq, id});
  return id;
}

void EventQueue::Cancel(EventId id) {
  // Erasing only from live_ makes Cancel a strict no-op for ids that already
  // fired: the stale heap node (if any) is skipped lazily.
  MutexLock lock(&mu_);
  live_.erase(id);
}

void EventQueue::SkipDead() {
  while (!heap_.empty() && live_.count(heap_.top().id) == 0) {
    heap_.pop();
  }
}

SimTime EventQueue::NextTime() {
  MutexLock lock(&mu_);
  SkipDead();
  assert(!heap_.empty());
  return heap_.top().time;
}

std::function<void()> EventQueue::Pop(SimTime* time) {
  MutexLock lock(&mu_);
  SkipDead();
  assert(!heap_.empty());
  EventId id = heap_.top().id;
  heap_.pop();
  auto it = live_.find(id);
  *time = it->second.time;
  std::function<void()> fn = std::move(it->second.fn);
  live_.erase(it);
  return fn;
}

std::function<void()> EventQueue::PopById(EventId id, SimTime* time) {
  MutexLock lock(&mu_);
  auto it = live_.find(id);
  if (it == live_.end()) return {};
  *time = it->second.time;
  std::function<void()> fn = std::move(it->second.fn);
  live_.erase(it);
  return fn;
}

std::vector<PendingEvent> EventQueue::Pending() const {
  MutexLock lock(&mu_);
  std::vector<PendingEvent> out;
  out.reserve(live_.size());
  for (const auto& [id, entry] : live_) {
    out.push_back(PendingEvent{id, entry.time, entry.label});
  }
  // Pop order: time, then scheduling sequence. Ids and sequence numbers are
  // issued together monotonically, so (time, id) is the same order.
  std::sort(out.begin(), out.end(),
            [](const PendingEvent& a, const PendingEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.id < b.id;
            });
  return out;
}

}  // namespace nbcp
