#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace nbcp {

EventId EventQueue::Push(SimTime at, std::function<void()> fn) {
  EventId id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id, std::move(fn)});
  ++live_count_;
  return id;
}

void EventQueue::Cancel(EventId id) {
  if (id == 0 || id >= next_id_) return;
  auto [it, inserted] = cancelled_.insert(id);
  (void)it;
  if (inserted && live_count_ > 0) --live_count_;
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::Empty() {
  SkipCancelled();
  return heap_.empty();
}

SimTime EventQueue::NextTime() {
  SkipCancelled();
  assert(!heap_.empty());
  return heap_.top().time;
}

std::function<void()> EventQueue::Pop(SimTime* time) {
  SkipCancelled();
  assert(!heap_.empty());
  // priority_queue::top() is const; the callback must be moved out, so we
  // const_cast the entry. The entry is popped immediately afterwards.
  Entry& top = const_cast<Entry&>(heap_.top());
  *time = top.time;
  std::function<void()> fn = std::move(top.fn);
  heap_.pop();
  --live_count_;
  return fn;
}

size_t EventQueue::Size() {
  SkipCancelled();
  return live_count_;
}

}  // namespace nbcp
