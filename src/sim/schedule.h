#ifndef NBCP_SIM_SCHEDULE_H_
#define NBCP_SIM_SCHEDULE_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/event_queue.h"

namespace nbcp {

class Simulator;

/// Sentinel ChooseNext return value: stop the controlled run immediately.
inline constexpr EventId kStopRun = std::numeric_limits<EventId>::max();

/// Pluggable scheduling policy for Simulator::RunControlled.
///
/// Before each event, the simulator hands the strategy the full list of
/// pending events (in default pop order: time, then scheduling sequence) and
/// fires whichever one the strategy picks. Virtual time advances to
/// max(now, chosen event's timestamp), so out-of-time-order choices never
/// rewind the clock — they model messages overtaking each other in the
/// network, which is exactly the nondeterminism a schedule explorer probes.
///
/// The strategy may schedule new labeled events on `sim` from inside
/// ChooseNext (e.g. a crash injection callback) and return the fresh id.
class ScheduleStrategy {
 public:
  virtual ~ScheduleStrategy() = default;

  /// Picks the next event to fire. Return values:
  ///  - an id from `pending` (or one just scheduled on `sim`): fire it;
  ///  - 0: fire the default earliest (time, seq) event;
  ///  - kStopRun: end the controlled run with events still pending.
  virtual EventId ChooseNext(Simulator& sim,
                             const std::vector<PendingEvent>& pending) = 0;
};

/// The identity strategy: always defers to default (time, seq) order.
/// RunControlled with FifoStrategy is equivalent to Run.
class FifoStrategy final : public ScheduleStrategy {
 public:
  EventId ChooseNext(Simulator& sim,
                     const std::vector<PendingEvent>& pending) override {
    (void)sim;
    (void)pending;
    return 0;
  }
};

}  // namespace nbcp

#endif  // NBCP_SIM_SCHEDULE_H_
