#ifndef NBCP_SIM_SIMULATOR_H_
#define NBCP_SIM_SIMULATOR_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>

#include "common/causal_clock.h"
#include "common/rng.h"
#include "common/types.h"
#include "runtime/clock.h"
#include "sim/event_queue.h"

namespace nbcp {

class ScheduleStrategy;

/// Lifetime counters of one Simulator, for observability snapshots.
struct SimStats {
  size_t events_executed = 0;
  size_t events_scheduled = 0;
  size_t max_queue_depth = 0;
};

/// Single-threaded discrete-event simulator: the virtual-time
/// implementation of the Clock seam.
///
/// All nbcp runtime components (network, sites, failure injector) share one
/// Simulator. Virtual time advances only between events; within an event
/// callback, `now()` is constant. Determinism: given the same seed and the
/// same scheduling sequence, a run is bit-for-bit reproducible.
class Simulator : public Clock {
 public:
  explicit Simulator(uint64_t seed = 42) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime now() const override { return now_; }

  /// Shared deterministic RNG.
  Rng& rng() override { return rng_; }

  /// Schedules `fn` to run `delay` microseconds from now.
  EventId ScheduleAfter(SimTime delay, std::function<void()> fn) {
    EventId id = queue_.Push(now_ + delay, std::move(fn));
    NoteScheduled();
    return id;
  }

  /// Schedules `fn` to run `delay` microseconds from now, tagged with an
  /// exploration label (see EventLabel). Labels never affect execution —
  /// except that, with a clock domain attached, a timer firing at a site
  /// ticks that site's causal clock first (a timer is a local event: its
  /// callback, and everything it records, runs on post-tick clocks).
  EventId ScheduleLabeled(SimTime delay, EventLabel label,
                          std::function<void()> fn) override {
    fn = WrapTimerTick(label, std::move(fn));
    EventId id = queue_.Push(now_ + delay, std::move(label), std::move(fn));
    NoteScheduled();
    return id;
  }

  /// Attaches the run's causal clocks (not owned; nullptr detaches). Only
  /// timer firings scheduled *after* this call tick the clock.
  void set_clocks(CausalClockDomain* clocks) override { clocks_ = clocks; }

  /// Schedules `fn` at absolute virtual time `at` (clamped to >= now).
  EventId ScheduleAt(SimTime at, std::function<void()> fn) {
    if (at < now_) at = now_;
    EventId id = queue_.Push(at, std::move(fn));
    NoteScheduled();
    return id;
  }

  /// Labeled variant of ScheduleAt, same timer-tick semantics as
  /// ScheduleLabeled.
  EventId ScheduleLabeledAt(SimTime at, EventLabel label,
                            std::function<void()> fn) override {
    if (at < now_) at = now_;
    fn = WrapTimerTick(label, std::move(fn));
    EventId id = queue_.Push(at, std::move(label), std::move(fn));
    NoteScheduled();
    return id;
  }

  /// Virtual time: the simulator backend.
  bool virtual_time() const override { return true; }

  /// Cancels a scheduled event.
  void Cancel(EventId id) override { queue_.Cancel(id); }

  /// Runs events until the queue drains or `max_events` fire.
  /// Returns the number of events executed.
  size_t Run(size_t max_events = SIZE_MAX);

  /// Runs events with timestamp <= `until`. Virtual time ends at `until`
  /// (or earlier if the queue drains). Returns events executed.
  size_t RunUntil(SimTime until);

  /// Executes exactly one event if available. Returns true if one ran.
  bool Step();

  /// Runs events with the strategy choosing each one, until the queue
  /// drains, `max_events` fire, or the strategy returns kStopRun. Choosing
  /// an event whose timestamp is in the "future" advances virtual time to
  /// it; choosing one "behind" the clock runs it at the current time (time
  /// never rewinds). Returns events executed.
  size_t RunControlled(ScheduleStrategy& strategy,
                       size_t max_events = SIZE_MAX);

  /// Fires the pending event `id` immediately, advancing virtual time to
  /// max(now, its timestamp). Returns false if `id` is not pending.
  bool FireEvent(EventId id);

  /// Number of pending events.
  size_t PendingEvents() const { return queue_.Size(); }

  /// Snapshot of all pending events in default pop order (time, seq).
  std::vector<PendingEvent> Pending() const { return queue_.Pending(); }

  const SimStats& stats() const { return stats_; }

 private:
  /// With a clock domain attached, a timer firing at a site ticks that
  /// site's causal clock before the callback runs (a timer is a local
  /// event: its callback, and everything it records, runs on post-tick
  /// clocks).
  std::function<void()> WrapTimerTick(const EventLabel& label,
                                      std::function<void()> fn) {
    if (clocks_ != nullptr && label.cls == EventClass::kTimer &&
        label.site != kNoSite) {
      return [clocks = clocks_, site = label.site, inner = std::move(fn)]() {
        clocks->OnLocal(site);
        inner();
      };
    }
    return fn;
  }

  void NoteScheduled() {
    ++stats_.events_scheduled;
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.Size());
  }

  EventQueue queue_;
  SimTime now_ = 0;
  Rng rng_;
  SimStats stats_;
  CausalClockDomain* clocks_ = nullptr;
};

}  // namespace nbcp

#endif  // NBCP_SIM_SIMULATOR_H_
