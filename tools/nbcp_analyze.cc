// nbcp-analyze: the paper's methodology as a command-line tool.
//
//   nbcp-analyze check <file.nbcp> [n]        validate + theorem + tables
//   nbcp-analyze synthesize <file.nbcp> [n]   emit the nonblocking version
//   nbcp-analyze dot <file.nbcp>              emit Graphviz
//   nbcp-analyze simulate <file.nbcp> [n] [seed] [--crash-coordinator]
//                                             run one transaction
//   nbcp-analyze builtin <name>               dump a builtin in the DSL
//   nbcp-analyze list                         list builtin protocols
//
// Protocol files use the text format documented in fsa/spec_parser.h.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/buffer_synthesis.h"
#include "analysis/concurrency_set.h"
#include "analysis/nonblocking.h"
#include "analysis/state_graph.h"
#include "analysis/synchronicity.h"
#include "core/transaction_manager.h"
#include "fsa/dot_export.h"
#include "fsa/spec_parser.h"
#include "protocols/protocols.h"
#include "protocols/registry.h"
#include "cli_common.h"

using namespace nbcp;
using cli::Fail;
using cli::LoadSpec;
using cli::ParseUint;

namespace {

int Check(const ProtocolSpec& spec, size_t n) {
  std::printf("protocol: %s (%s, %d phases, %zu sites analyzed)\n",
              spec.name().c_str(), ToString(spec.paradigm()).c_str(),
              spec.NumPhases(), n);
  auto graph = ReachableStateGraph::Build(spec, n);
  if (!graph.ok()) return Fail(graph.status().ToString());
  std::printf("reachable global states: %zu (edges %zu)\n",
              graph->num_nodes(), graph->num_edges());
  std::printf("inconsistent: %zu, deadlocked: %zu\n",
              graph->InconsistentNodes().size(),
              graph->DeadlockedNodes().size());
  auto sync = CheckSynchronicity(*graph);
  std::printf("synchronous within one transition: %s (max lead %d)\n",
              sync.synchronous_within_one() ? "yes" : "no", sync.max_lead);

  auto analysis = ConcurrencyAnalysis::Compute(*graph);
  for (SiteId site = 1; site <= n; ++site) {
    RoleIndex role = spec.RoleForSite(site, n);
    if (site > 1 && role == spec.RoleForSite(site - 1, n)) continue;
    std::printf("\nconcurrency sets (site %u, role %s):\n", site,
                spec.role_name(role).c_str());
    const Automaton& automaton = spec.role(role);
    for (size_t s = 0; s < automaton.num_states(); ++s) {
      auto state = static_cast<StateIndex>(s);
      if (!analysis.IsOccupied(site, state)) continue;
      std::printf("  CS(%s) = %-28s committable=%s\n",
                  automaton.state(state).name.c_str(),
                  analysis.FormatConcurrencySet(site, state).c_str(),
                  analysis.IsCommittable(site, state) ? "yes" : "no");
    }
  }

  NonblockingReport report = CheckNonblocking(analysis);
  std::printf("\n%s", report.ToString().c_str());
  return report.nonblocking ? 0 : 2;
}

int Simulate(ProtocolSpec spec, size_t n, uint64_t seed,
             bool crash_coordinator) {
  SystemConfig config;
  config.num_sites = n;
  config.seed = seed;
  config.trace = true;
  auto system = CommitSystem::CreateWithSpec(config, std::move(spec));
  if (!system.ok()) return Fail(system.status().ToString());
  TransactionId txn = (*system)->Begin();
  if (crash_coordinator) {
    (*system)->injector().ScheduleCrash(1, 250);
  }
  TxnResult result = (*system)->RunToCompletion(txn);
  std::printf("%s\n", (*system)->trace()->RenderLanes(txn, n).c_str());
  std::printf("%s\n", result.ToString().c_str());
  return result.consistent ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: nbcp-analyze "
                 "<check|synthesize|dot|simulate|builtin|list> ...\n");
    return 1;
  }
  std::string command = argv[1];

  if (command == "list") {
    for (const std::string& name : BuiltinProtocolNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (command == "builtin") {
    if (argc < 3) return Fail("usage: builtin <name>");
    auto spec = MakeProtocol(argv[2]);
    if (!spec.ok()) return Fail(spec.status().ToString());
    std::printf("%s", SerializeProtocolSpec(*spec).c_str());
    return 0;
  }

  if (argc < 3) return Fail("missing protocol file");
  auto spec = LoadSpec(argv[2]);
  if (!spec.ok()) return Fail(spec.status().ToString());
  size_t n = 3;
  if (argc > 3 && argv[3][0] != '-') {
    uint64_t parsed = 0;
    if (!ParseUint(argv[3], &parsed) || parsed == 0) {
      return Fail("invalid site count '" + std::string(argv[3]) +
                  "' (expected a positive integer)");
    }
    n = static_cast<size_t>(parsed);
  }

  if (command == "check") {
    return Check(*spec, n);
  }
  if (command == "synthesize") {
    auto fixed = SynthesizeNonblocking(*spec, n);
    if (!fixed.ok()) return Fail(fixed.status().ToString());
    std::printf("%s", SerializeProtocolSpec(*fixed).c_str());
    return 0;
  }
  if (command == "dot") {
    std::printf("%s", ToDot(*spec).c_str());
    return 0;
  }
  if (command == "simulate") {
    uint64_t seed = 42;
    if (argc > 4 && argv[4][0] != '-') {
      if (!ParseUint(argv[4], &seed)) {
        return Fail("invalid seed '" + std::string(argv[4]) +
                    "' (expected an unsigned integer)");
      }
    }
    bool crash = false;
    for (int i = 3; i < argc; ++i) {
      if (std::string(argv[i]) == "--crash-coordinator") crash = true;
    }
    return Simulate(std::move(*spec), n, seed, crash);
  }
  return Fail("unknown command '" + command + "'");
}
