// nbcp-explore: systematic schedule exploration with implementation <-> model
// conformance checking.
//
//   nbcp-explore <builtin-name|file.nbcp> [options]
//   nbcp-explore replay <schedule.jsonl> [options]
//   nbcp-explore list
//
// Explores message-delivery / protocol-start (and optionally crash)
// schedules of the simulated runtime via stateless re-execution (DFS with
// sleep sets + dynamic partial-order reduction, or plain exhaustive DFS).
// Every explored execution is abstracted through the trace pipeline and
// checked against the spec's unreduced reachable-state graph: reached
// abstract states must be graph nodes, terminal states must satisfy the
// atomicity invariants, and never-exercised spec states are reported as
// coverage gaps. Divergent runs export witness schedules (replayable with
// `nbcp-explore replay`) plus full traces (replayable with
// `nbcp-trace check --strict`).
//
// Options:
//   -n <N>               sites in the executed population (default 2)
//   --exhaustive         plain DFS, no reduction (the coverage ground truth)
//   --dpor               sleep sets + DPOR (default; off when crashes > 0)
//   --votes <v1v2...>    explore one preset vote vector, e.g. "yn" or "10"
//                        (default: all 2^n vectors)
//   --max-crashes <N>    crash-injection choice points per schedule
//   --max-schedules <N>  schedule budget (default 1000000)
//   --max-depth <N>      choices per schedule (default 10000)
//   --max-nodes <N>      state-graph node budget (default 500000)
//   --mutate <name>      run a mutated implementation against the original
//                        model (see `nbcp-explore mutations`)
//   --model <spec>       check against a different model spec
//   --seed <N>           simulator seed (default 42)
//   --json               machine-readable report on stdout
//   --witness-dir <dir>  write witness schedules + traces into <dir>
//
// Exit codes (CI contract):
//   0  every explored execution conforms to the model
//   1  usage or infrastructure error
//   2  divergence: an execution left the model's reachable-state graph
//   3  invariant violation (atomicity / C2) on an explored execution
//   4  inconclusive: a schedule/depth/graph bound was exhausted
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "explore/explorer.h"
#include "explore/mutate.h"
#include "fsa/spec_parser.h"
#include "obs/export.h"
#include "protocols/registry.h"
#include "cli_common.h"

using namespace nbcp;
using cli::Fail;
using cli::LoadSpec;
using cli::ParseSize;
using cli::ProtocolLabel;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: nbcp-explore <builtin-name|file.nbcp> [-n N] [--exhaustive]\n"
      "                    [--votes V] [--max-crashes N] [--max-schedules N]\n"
      "                    [--max-depth N] [--max-nodes N] [--mutate NAME]\n"
      "                    [--model SPEC] [--seed N] [--json]\n"
      "                    [--witness-dir DIR]\n"
      "       nbcp-explore replay <schedule.jsonl> [--model SPEC] [--json]\n"
      "       nbcp-explore list | mutations\n");
  return 1;
}

/// "yn", "10", "YN" -> {true, false}.
bool ParseVotes(const std::string& text, std::vector<bool>* out) {
  out->clear();
  for (char c : text) {
    if (c == 'y' || c == 'Y' || c == '1') {
      out->push_back(true);
    } else if (c == 'n' || c == 'N' || c == '0') {
      out->push_back(false);
    } else {
      return false;
    }
  }
  return !out->empty();
}

/// Writes each witness as a schedule file + trace file pair; appends the
/// paths written to `files`.
Status WriteWitnesses(const std::string& dir, const std::string& label,
                      const std::string& klass, size_t num_sites,
                      const std::vector<DivergenceWitness>& witnesses,
                      std::vector<std::string>* files) {
  size_t index = 0;
  for (const DivergenceWitness& w : witnesses) {
    std::string base =
        dir + "/" + label + "-" + klass + "-" + std::to_string(index++);
    Status s = WriteFile(base + ".schedule.jsonl",
                         ScheduleToJsonLines(label, num_sites, w.votes,
                                             w.schedule));
    if (!s.ok()) return s;
    files->push_back(base + ".schedule.jsonl");
    if (!w.trace_jsonl.empty()) {
      s = WriteFile(base + ".trace.jsonl", w.trace_jsonl);
      if (!s.ok()) return s;
      files->push_back(base + ".trace.jsonl");
    }
  }
  return Status::OK();
}

int EmitReport(const ExploreReport& report, bool json,
               const std::vector<std::string>& witness_files) {
  if (json) {
    Json doc = report.ToJson();
    Json files = Json::Array();
    for (const std::string& path : witness_files) files.Append(path);
    doc["witness_files"] = std::move(files);
    std::printf("%s\n", doc.Dump(2).c_str());
  } else {
    std::printf("%s", report.Render().c_str());
    for (const std::string& path : witness_files) {
      std::printf("witness: %s\n", path.c_str());
    }
  }
  return report.ExitCode();
}

int RunReplay(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string path = argv[2];
  bool json = false;
  std::string model_name;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--model") {
      if (++i >= argc) return Fail("--model requires a spec");
      model_name = argv[i];
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return Usage();
    }
  }
  std::ifstream in(path);
  if (!in) return Fail("cannot read schedule file '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  auto sched = ParseScheduleJsonLines(text.str());
  if (!sched.ok()) return Fail(sched.status().ToString());

  // The schedule was recorded against a (possibly mutated) implementation;
  // the meta line's protocol name with a "+mutation" suffix reconstructs it.
  std::string impl_name = sched->protocol;
  std::string mutation;
  size_t plus = impl_name.find('+');
  if (plus != std::string::npos) {
    mutation = impl_name.substr(plus + 1);
    impl_name = impl_name.substr(0, plus);
  }
  auto spec = LoadSpec(impl_name);
  if (!spec.ok()) return Fail(spec.status().ToString());
  ProtocolSpec impl = *spec;
  if (!mutation.empty()) {
    auto mutated = MutateSpec(impl, mutation);
    if (!mutated.ok()) return Fail(mutated.status().ToString());
    impl = std::move(*mutated);
  }
  ProtocolSpec model = *spec;
  if (!model_name.empty()) {
    auto m = LoadSpec(model_name);
    if (!m.ok()) return Fail(m.status().ToString());
    model = std::move(*m);
  }

  ExploreOptions options;
  options.num_sites = sched->num_sites;
  // A recorded schedule carries its own failure budget: crash choices are
  // only offered during replay when max_crashes covers them, so infer the
  // budget from the schedule instead of defaulting to failure-free.
  for (const ScheduleChoice& c : sched->choices) {
    if (c.kind == ScheduleChoice::Kind::kCrash) ++options.max_crashes;
  }
  auto report = ReplaySchedule(impl, options, sched->votes, sched->choices,
                               &model);
  if (!report.ok()) return Fail(report.status().ToString());
  return EmitReport(*report, json, {});
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string target = argv[1];
  if (target == "list") {
    for (const std::string& name : BuiltinProtocolNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (target == "mutations") {
    for (const std::string& name : KnownMutations()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (target == "--help" || target == "-h") return Usage();
  if (target == "replay") return RunReplay(argc, argv);

  ExploreOptions options;
  bool json = false;
  std::string witness_dir;
  std::string mutation;
  std::string model_name;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-n") {
      if (++i >= argc || !ParseSize(argv[i], &options.num_sites) ||
          options.num_sites < 2) {
        return Fail("-n requires an integer >= 2");
      }
    } else if (arg == "--exhaustive") {
      options.dpor = false;
    } else if (arg == "--dpor") {
      options.dpor = true;
    } else if (arg == "--votes") {
      if (++i >= argc || !ParseVotes(argv[i], &options.votes)) {
        return Fail("--votes requires a y/n (or 1/0) string, e.g. yn");
      }
      options.all_vote_vectors = false;
    } else if (arg == "--max-crashes") {
      if (++i >= argc || !ParseSize(argv[i], &options.max_crashes)) {
        return Fail("--max-crashes requires an integer");
      }
    } else if (arg == "--max-schedules") {
      if (++i >= argc || !ParseSize(argv[i], &options.max_schedules) ||
          options.max_schedules == 0) {
        return Fail("--max-schedules requires a positive integer");
      }
    } else if (arg == "--max-depth") {
      if (++i >= argc || !ParseSize(argv[i], &options.max_depth) ||
          options.max_depth == 0) {
        return Fail("--max-depth requires a positive integer");
      }
    } else if (arg == "--max-nodes") {
      if (++i >= argc || !ParseSize(argv[i], &options.max_graph_nodes) ||
          options.max_graph_nodes == 0) {
        return Fail("--max-nodes requires a positive integer");
      }
    } else if (arg == "--mutate") {
      if (++i >= argc) return Fail("--mutate requires a mutation name");
      mutation = argv[i];
    } else if (arg == "--model") {
      if (++i >= argc) return Fail("--model requires a spec");
      model_name = argv[i];
    } else if (arg == "--seed") {
      size_t seed = 0;
      if (++i >= argc || !ParseSize(argv[i], &seed)) {
        return Fail("--seed requires an integer");
      }
      options.seed = seed;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--witness-dir") {
      if (++i >= argc) return Fail("--witness-dir requires a directory");
      witness_dir = argv[i];
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return Usage();
    }
  }

  auto spec = LoadSpec(target);
  if (!spec.ok()) return Fail(spec.status().ToString());
  std::string label = ProtocolLabel(target, *spec);

  ProtocolSpec impl = *spec;
  ProtocolSpec model = *spec;
  if (!mutation.empty()) {
    auto mutated = MutateSpec(impl, mutation);
    if (!mutated.ok()) return Fail(mutated.status().ToString());
    impl = std::move(*mutated);
    label += "+" + mutation;
  }
  if (!model_name.empty()) {
    auto m = LoadSpec(model_name);
    if (!m.ok()) return Fail(m.status().ToString());
    model = std::move(*m);
  }

  auto report = ExploreProtocol(impl, options, &model);
  if (!report.ok()) return Fail(report.status().ToString());

  std::vector<std::string> witness_files;
  if (!witness_dir.empty()) {
    Status s = WriteWitnesses(witness_dir, label, "divergence",
                              options.num_sites, report->divergences,
                              &witness_files);
    if (s.ok()) {
      s = WriteWitnesses(witness_dir, label, "violation", options.num_sites,
                         report->violations, &witness_files);
    }
    if (!s.ok()) return Fail(s.ToString());
  }
  return EmitReport(*report, json, witness_files);
}
