// nbcp-trace: inspects a JSON-lines trace produced by CommitSystem
// (SystemConfig::trace + ExportTraceJsonl, e.g. from the coordinator_crash
// example).
//
// Usage:
//   nbcp-trace <trace.jsonl>                 overview + anomaly scan
//   nbcp-trace <trace.jsonl> --txn <id>      one transaction in depth
//   nbcp-trace <trace.jsonl> --timeline      full message timeline
//   nbcp-trace <trace.jsonl> --chrome <out>  re-emit in Chrome trace format
//
// Sections:
//   phases     per-phase latency breakdown (count/mean/p50/p95/p99/max)
//              aggregated over all (txn, site) spans;
//   messages   send/deliver/drop counts per message type with delivery
//              latency;
//   anomalies  blocked transactions (open termination spans), atomicity
//              violations (sites of one transaction deciding differently),
//              orphan messages (sent but never delivered or dropped).
#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/histogram.h"
#include "obs/span.h"
#include "trace/trace.h"

using namespace nbcp;

namespace {

struct Options {
  std::string path;
  std::optional<TransactionId> txn;
  bool timeline = false;
  std::string chrome_out;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: nbcp-trace <trace.jsonl> [--txn <id>] [--timeline] "
               "[--chrome <out.json>]\n");
}

/// "prepare->3" / "prepare<-1" → message type.
std::string MsgType(const std::string& detail) {
  size_t pos = detail.find("->");
  if (pos == std::string::npos) pos = detail.find("<-");
  return pos == std::string::npos ? detail : detail.substr(0, pos);
}

void PrintPhaseBreakdown(const std::vector<PhaseSpan>& spans) {
  std::map<CommitPhase, LatencyHistogram> by_phase;
  std::map<CommitPhase, size_t> open_count;
  for (const PhaseSpan& span : spans) {
    if (span.open) {
      ++open_count[span.phase];
    } else {
      by_phase[span.phase].Record(span.duration());
    }
  }
  std::printf("per-phase latency (us, closed spans over all txns/sites)\n");
  std::printf("  %-13s %7s %9s %7s %7s %7s %9s %6s\n", "phase", "count",
              "mean", "p50", "p95", "p99", "max", "open");
  for (CommitPhase phase :
       {CommitPhase::kVoteRequest, CommitPhase::kVote, CommitPhase::kPrecommit,
        CommitPhase::kDecision, CommitPhase::kTermination}) {
    auto it = by_phase.find(phase);
    size_t open = open_count.count(phase) ? open_count[phase] : 0;
    if (it == by_phase.end()) {
      if (open > 0) {
        std::printf("  %-13s %7d %9s %7s %7s %7s %9s %6zu\n",
                    ToString(phase).c_str(), 0, "-", "-", "-", "-", "-", open);
      }
      continue;
    }
    const LatencyHistogram& h = it->second;
    std::printf("  %-13s %7llu %9.1f %7llu %7llu %7llu %9llu %6zu\n",
                ToString(phase).c_str(),
                static_cast<unsigned long long>(h.count()), h.mean(),
                static_cast<unsigned long long>(h.p50()),
                static_cast<unsigned long long>(h.p95()),
                static_cast<unsigned long long>(h.p99()),
                static_cast<unsigned long long>(h.max()), open);
  }
}

void PrintMessageStats(const std::vector<TraceEvent>& events) {
  struct PerType {
    size_t sent = 0, delivered = 0, dropped = 0;
    LatencyHistogram delay;
  };
  std::map<std::string, PerType> by_type;
  std::map<uint64_t, SimTime> sent_at;  // seq -> send time.
  for (const TraceEvent& e : events) {
    switch (e.type) {
      case TraceEventType::kMessageSent:
        ++by_type[MsgType(e.detail)].sent;
        if (e.seq != 0) sent_at[e.seq] = e.at;
        break;
      case TraceEventType::kMessageDelivered: {
        PerType& t = by_type[MsgType(e.detail)];
        ++t.delivered;
        auto it = e.seq != 0 ? sent_at.find(e.seq) : sent_at.end();
        if (it != sent_at.end()) t.delay.Record(e.at - it->second);
        break;
      }
      case TraceEventType::kMessageDropped:
        ++by_type[MsgType(e.detail)].dropped;
        break;
      default:
        break;
    }
  }
  if (by_type.empty()) return;
  std::printf("\nmessages (delivery latency us)\n");
  std::printf("  %-18s %6s %6s %6s %8s %7s %9s\n", "type", "sent", "recv",
              "drop", "mean", "p95", "max");
  for (const auto& [type, t] : by_type) {
    if (t.delay.count() > 0) {
      std::printf("  %-18s %6zu %6zu %6zu %8.1f %7llu %9llu\n", type.c_str(),
                  t.sent, t.delivered, t.dropped, t.delay.mean(),
                  static_cast<unsigned long long>(t.delay.p95()),
                  static_cast<unsigned long long>(t.delay.max()));
    } else {
      std::printf("  %-18s %6zu %6zu %6zu %8s %7s %9s\n", type.c_str(),
                  t.sent, t.delivered, t.dropped, "-", "-", "-");
    }
  }
}

void PrintTimeline(const std::vector<TraceEvent>& events,
                   std::optional<TransactionId> txn) {
  std::printf("\nmessage timeline\n");
  for (const TraceEvent& e : events) {
    if (txn.has_value() && e.txn != *txn) continue;
    if (e.type != TraceEventType::kMessageSent &&
        e.type != TraceEventType::kMessageDelivered &&
        e.type != TraceEventType::kMessageDropped) {
      continue;
    }
    std::printf("  t=%-8llu site %-3u txn %-4llu %-5s %s (seq %llu)\n",
                static_cast<unsigned long long>(e.at), e.site,
                static_cast<unsigned long long>(e.txn),
                ToString(e.type).c_str(), e.detail.c_str(),
                static_cast<unsigned long long>(e.seq));
  }
}

void PrintTransaction(const ImportedTrace& trace, TransactionId txn) {
  std::printf("\ntransaction %llu\n",
              static_cast<unsigned long long>(txn));
  std::printf("  spans (per site):\n");
  for (const PhaseSpan& span : trace.spans) {
    if (span.txn != txn) continue;
    if (span.open) {
      std::printf("    site %-3u %-13s [%llu .. ) OPEN\n", span.site,
                  ToString(span.phase).c_str(),
                  static_cast<unsigned long long>(span.begin));
    } else {
      std::printf("    site %-3u %-13s [%llu .. %llu]  %llu us\n", span.site,
                  ToString(span.phase).c_str(),
                  static_cast<unsigned long long>(span.begin),
                  static_cast<unsigned long long>(span.end),
                  static_cast<unsigned long long>(span.duration()));
    }
  }
  std::printf("  events:\n");
  for (const TraceEvent& e : trace.events) {
    if (e.txn != txn) continue;
    std::printf("    t=%-8llu site %-3u %-12s %s\n",
                static_cast<unsigned long long>(e.at), e.site,
                ToString(e.type).c_str(), e.detail.c_str());
  }
}

/// Anomaly scan; returns the number of findings.
size_t PrintAnomalies(const ImportedTrace& trace) {
  size_t findings = 0;

  // Blocked transactions: an explicit BLOCKED event, or a termination span
  // left open at the end of the trace.
  std::set<TransactionId> blocked;
  for (const TraceEvent& e : trace.events) {
    if (e.type == TraceEventType::kBlocked) blocked.insert(e.txn);
  }
  for (const PhaseSpan& span : trace.spans) {
    if (span.open && span.phase == CommitPhase::kTermination) {
      blocked.insert(span.txn);
    }
  }
  // A transaction that eventually decided everywhere is not blocked even if
  // it passed through a blocked episode... keep the flag but note decisions.
  for (TransactionId txn : blocked) {
    size_t decisions = 0;
    for (const TraceEvent& e : trace.events) {
      if (e.txn == txn && e.type == TraceEventType::kDecision) ++decisions;
    }
    ++findings;
    std::printf("  BLOCKED     txn %llu (%zu site decision(s) recorded)\n",
                static_cast<unsigned long long>(txn), decisions);
  }

  // Atomicity violations: one transaction, different decisions at
  // different sites.
  std::map<TransactionId, std::set<std::string>> outcomes;
  for (const TraceEvent& e : trace.events) {
    if (e.type == TraceEventType::kDecision && !e.detail.empty()) {
      outcomes[e.txn].insert(e.detail);
    }
  }
  for (const auto& [txn, set] : outcomes) {
    if (set.size() > 1) {
      ++findings;
      std::string joined;
      for (const std::string& o : set) {
        if (!joined.empty()) joined += " vs ";
        joined += o;
      }
      std::printf("  ATOMICITY   txn %llu decided inconsistently: %s\n",
                  static_cast<unsigned long long>(txn), joined.c_str());
    }
  }

  // Orphan messages: a send whose seq never shows up as deliver or drop.
  // (With a ring-buffer trace the send may simply have been evicted, so
  // orphans are only meaningful on complete traces.)
  std::map<uint64_t, const TraceEvent*> pending;
  for (const TraceEvent& e : trace.events) {
    if (e.seq == 0) continue;
    if (e.type == TraceEventType::kMessageSent) {
      pending[e.seq] = &e;
    } else if (e.type == TraceEventType::kMessageDelivered ||
               e.type == TraceEventType::kMessageDropped) {
      pending.erase(e.seq);
    }
  }
  for (const auto& [seq, e] : pending) {
    ++findings;
    std::printf("  ORPHAN      seq %llu: %s sent at t=%llu by site %u, "
                "never delivered or dropped\n",
                static_cast<unsigned long long>(seq), e->detail.c_str(),
                static_cast<unsigned long long>(e->at), e->site);
  }

  if (findings == 0) std::printf("  none\n");
  return findings;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--txn" && i + 1 < argc) {
      opt.txn = static_cast<TransactionId>(std::stoull(argv[++i]));
    } else if (arg == "--timeline") {
      opt.timeline = true;
    } else if (arg == "--chrome" && i + 1 < argc) {
      opt.chrome_out = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (opt.path.empty()) {
      opt.path = arg;
    } else {
      PrintUsage();
      return 2;
    }
  }
  if (opt.path.empty()) {
    PrintUsage();
    return 2;
  }

  auto content = ReadFile(opt.path);
  if (!content.ok()) {
    std::fprintf(stderr, "error: %s\n", content.status().ToString().c_str());
    return 1;
  }
  auto trace = ParseTraceJsonLines(*content);
  if (!trace.ok()) {
    std::fprintf(stderr, "error: %s\n", trace.status().ToString().c_str());
    return 1;
  }

  std::set<TransactionId> txns;
  for (const TraceEvent& e : trace->events) {
    if (e.txn != kNoTransaction) txns.insert(e.txn);
  }
  std::printf("trace: %s\n", opt.path.c_str());
  std::printf("  protocol %s, %zu sites, %zu events, %zu spans, "
              "%zu transaction(s)\n\n",
              trace->meta.protocol.empty() ? "?" : trace->meta.protocol.c_str(),
              trace->meta.num_sites, trace->events.size(),
              trace->spans.size(), txns.size());

  PrintPhaseBreakdown(trace->spans);
  PrintMessageStats(trace->events);
  if (opt.timeline) PrintTimeline(trace->events, opt.txn);
  if (opt.txn.has_value()) PrintTransaction(*trace, *opt.txn);

  std::printf("\nanomalies\n");
  size_t findings = PrintAnomalies(*trace);

  if (!opt.chrome_out.empty()) {
    TraceMeta meta = trace->meta;
    Status s = WriteFile(opt.chrome_out,
                         ExportChromeTrace(trace->events, trace->spans, meta));
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("\nchrome trace written to %s\n", opt.chrome_out.c_str());
  }
  return findings == 0 ? 0 : 3;
}
