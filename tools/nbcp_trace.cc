// nbcp-trace: inspects a JSON-lines trace produced by CommitSystem
// (SystemConfig::trace + ExportTraceJsonl, e.g. from the coordinator_crash
// example).
//
// Usage:
//   nbcp-trace <trace.jsonl>                 overview + anomaly scan
//   nbcp-trace <trace.jsonl> --txn <id>      one transaction in depth
//   nbcp-trace <trace.jsonl> --timeline      full message timeline
//   nbcp-trace <trace.jsonl> --chrome <out>  re-emit in Chrome trace format
//   nbcp-trace replay <trace.jsonl>          reconstruct the global-state
//                                            sequence and re-run the
//                                            invariant checks offline
//   nbcp-trace diff <a.jsonl> <b.jsonl>      structural comparison: first
//                                            divergent global state plus
//                                            per-phase latency deltas
//   nbcp-trace check [--strict] <trace>      CI gate; --strict also replays
//                                            and verifies the timeline
//   nbcp-trace critical-path <trace>         per-transaction critical path
//     [--txn <id>] [--json] [--chrome <out>] with latency attribution and
//                                            message slack
//   nbcp-trace causal <trace> [--txn <id>]   happens-before DAG summary and
//     [--json]                               clock-stamp validation
//   nbcp-trace blocking <trace> [--txn <id>] blocked spans: per-transaction
//     [--json]                               blocked-time table, cause
//                                            breakdown, worst blocked sites
//
// Exit codes: 0 clean, 1 IO/parse error, 2 usage, 3 anomalies or invariant
// violations found (including causality violations, unresolved blocked
// spans and cross-check failures), 4 structural divergence (diff, or
// replay timeline mismatch).
//
// Sections (overview mode):
//   phases     per-phase latency breakdown (count/mean/p50/p95/p99/max)
//              aggregated over all (txn, site) spans;
//   messages   send/deliver/drop counts per message type with delivery
//              latency;
//   anomalies  blocked transactions (open termination spans), atomicity
//              violations (sites of one transaction deciding differently),
//              recorded invariant-violation events, orphan messages (sent
//              but never delivered or dropped).
#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "explore/mutate.h"
#include "obs/blocking.h"
#include "obs/causal.h"
#include "obs/export.h"
#include "obs/histogram.h"
#include "obs/observer.h"
#include "obs/span.h"
#include "protocols/registry.h"
#include "trace/trace.h"
#include "cli_common.h"

using namespace nbcp;

namespace {

struct Options {
  std::string path;
  std::optional<TransactionId> txn;
  bool timeline = false;
  std::string chrome_out;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: nbcp-trace <trace.jsonl> [--txn <id>] [--timeline] "
               "[--chrome <out.json>]\n"
               "       nbcp-trace replay <trace.jsonl>\n"
               "       nbcp-trace diff <a.jsonl> <b.jsonl>\n"
               "       nbcp-trace check [--strict] <trace.jsonl>\n"
               "       nbcp-trace critical-path <trace.jsonl> [--txn <id>] "
               "[--json] [--chrome <out.json>]\n"
               "       nbcp-trace causal <trace.jsonl> [--txn <id>] "
               "[--json]\n"
               "       nbcp-trace blocking <trace.jsonl> [--txn <id>] "
               "[--json]\n");
}

/// "prepare->3" / "prepare<-1" → message type.
std::string MsgType(const std::string& detail) {
  size_t pos = detail.find("->");
  if (pos == std::string::npos) pos = detail.find("<-");
  return pos == std::string::npos ? detail : detail.substr(0, pos);
}

/// Loads and parses a trace, reporting errors to stderr. Returns nullopt on
/// failure (caller exits 1).
std::optional<ImportedTrace> LoadTrace(const std::string& path) {
  auto content = ReadFile(path);
  if (!content.ok()) {
    std::fprintf(stderr, "error: %s\n", content.status().ToString().c_str());
    return std::nullopt;
  }
  auto trace = ParseTraceJsonLines(*content);
  if (!trace.ok()) {
    std::fprintf(stderr, "error: %s\n", trace.status().ToString().c_str());
    return std::nullopt;
  }
  return std::move(*trace);
}

void PrintPhaseBreakdown(const std::vector<PhaseSpan>& spans) {
  std::map<CommitPhase, LatencyHistogram> by_phase;
  std::map<CommitPhase, size_t> open_count;
  for (const PhaseSpan& span : spans) {
    if (span.open) {
      ++open_count[span.phase];
    } else {
      by_phase[span.phase].Record(span.duration());
    }
  }
  std::printf("per-phase latency (us, closed spans over all txns/sites)\n");
  std::printf("  %-13s %7s %9s %7s %7s %7s %9s %6s\n", "phase", "count",
              "mean", "p50", "p95", "p99", "max", "open");
  for (CommitPhase phase :
       {CommitPhase::kVoteRequest, CommitPhase::kVote, CommitPhase::kPrecommit,
        CommitPhase::kDecision, CommitPhase::kTermination}) {
    auto it = by_phase.find(phase);
    size_t open = open_count.count(phase) ? open_count[phase] : 0;
    if (it == by_phase.end()) {
      if (open > 0) {
        std::printf("  %-13s %7d %9s %7s %7s %7s %9s %6zu\n",
                    ToString(phase).c_str(), 0, "-", "-", "-", "-", "-", open);
      }
      continue;
    }
    const LatencyHistogram& h = it->second;
    std::printf("  %-13s %7llu %9.1f %7llu %7llu %7llu %9llu %6zu\n",
                ToString(phase).c_str(),
                static_cast<unsigned long long>(h.count()), h.mean(),
                static_cast<unsigned long long>(h.p50()),
                static_cast<unsigned long long>(h.p95()),
                static_cast<unsigned long long>(h.p99()),
                static_cast<unsigned long long>(h.max()), open);
  }
}

void PrintMessageStats(const std::vector<TraceEvent>& events) {
  struct PerType {
    size_t sent = 0, delivered = 0, dropped = 0;
    LatencyHistogram delay;
  };
  std::map<std::string, PerType> by_type;
  std::map<uint64_t, SimTime> sent_at;  // seq -> send time.
  for (const TraceEvent& e : events) {
    switch (e.type) {
      case TraceEventType::kMessageSent:
        ++by_type[MsgType(e.detail)].sent;
        if (e.seq != 0) sent_at[e.seq] = e.at;
        break;
      case TraceEventType::kMessageDelivered: {
        PerType& t = by_type[MsgType(e.detail)];
        ++t.delivered;
        auto it = e.seq != 0 ? sent_at.find(e.seq) : sent_at.end();
        if (it != sent_at.end()) t.delay.Record(e.at - it->second);
        break;
      }
      case TraceEventType::kMessageDropped:
        ++by_type[MsgType(e.detail)].dropped;
        break;
      default:
        break;
    }
  }
  if (by_type.empty()) return;
  std::printf("\nmessages (delivery latency us)\n");
  std::printf("  %-18s %6s %6s %6s %8s %7s %9s\n", "type", "sent", "recv",
              "drop", "mean", "p95", "max");
  for (const auto& [type, t] : by_type) {
    if (t.delay.count() > 0) {
      std::printf("  %-18s %6zu %6zu %6zu %8.1f %7llu %9llu\n", type.c_str(),
                  t.sent, t.delivered, t.dropped, t.delay.mean(),
                  static_cast<unsigned long long>(t.delay.p95()),
                  static_cast<unsigned long long>(t.delay.max()));
    } else {
      std::printf("  %-18s %6zu %6zu %6zu %8s %7s %9s\n", type.c_str(),
                  t.sent, t.delivered, t.dropped, "-", "-", "-");
    }
  }
}

void PrintTimeline(const std::vector<TraceEvent>& events,
                   std::optional<TransactionId> txn) {
  std::printf("\nmessage timeline\n");
  for (const TraceEvent& e : events) {
    if (txn.has_value() && e.txn != *txn) continue;
    if (e.type != TraceEventType::kMessageSent &&
        e.type != TraceEventType::kMessageDelivered &&
        e.type != TraceEventType::kMessageDropped) {
      continue;
    }
    std::printf("  t=%-8llu site %-3u txn %-4llu %-5s %s (seq %llu)\n",
                static_cast<unsigned long long>(e.at), e.site,
                static_cast<unsigned long long>(e.txn),
                ToString(e.type).c_str(), e.detail.c_str(),
                static_cast<unsigned long long>(e.seq));
  }
}

void PrintTransaction(const ImportedTrace& trace, TransactionId txn) {
  std::printf("\ntransaction %llu\n",
              static_cast<unsigned long long>(txn));
  std::printf("  spans (per site):\n");
  for (const PhaseSpan& span : trace.spans) {
    if (span.txn != txn) continue;
    if (span.open) {
      std::printf("    site %-3u %-13s [%llu .. ) OPEN\n", span.site,
                  ToString(span.phase).c_str(),
                  static_cast<unsigned long long>(span.begin));
    } else {
      std::printf("    site %-3u %-13s [%llu .. %llu]  %llu us\n", span.site,
                  ToString(span.phase).c_str(),
                  static_cast<unsigned long long>(span.begin),
                  static_cast<unsigned long long>(span.end),
                  static_cast<unsigned long long>(span.duration()));
    }
  }
  std::printf("  events:\n");
  for (const TraceEvent& e : trace.events) {
    if (e.txn != txn) continue;
    std::printf("    t=%-8llu site %-3u %-12s %s\n",
                static_cast<unsigned long long>(e.at), e.site,
                ToString(e.type).c_str(), e.detail.c_str());
  }
}

/// Anomaly scan; returns the number of findings.
size_t PrintAnomalies(const ImportedTrace& trace) {
  size_t findings = 0;

  // Blocked transactions: an explicit BLOCKED event, or a termination span
  // left open at the end of the trace.
  std::set<TransactionId> blocked;
  for (const TraceEvent& e : trace.events) {
    if (e.type == TraceEventType::kBlocked) blocked.insert(e.txn);
  }
  for (const PhaseSpan& span : trace.spans) {
    if (span.open && span.phase == CommitPhase::kTermination) {
      blocked.insert(span.txn);
    }
  }
  // A transaction that eventually decided everywhere is not blocked even if
  // it passed through a blocked episode... keep the flag but note decisions.
  for (TransactionId txn : blocked) {
    size_t decisions = 0;
    for (const TraceEvent& e : trace.events) {
      if (e.txn == txn && e.type == TraceEventType::kDecision) ++decisions;
    }
    ++findings;
    std::printf("  BLOCKED     txn %llu (%zu site decision(s) recorded)\n",
                static_cast<unsigned long long>(txn), decisions);
  }

  // Atomicity violations: one transaction, different decisions at
  // different sites.
  std::map<TransactionId, std::set<std::string>> outcomes;
  for (const TraceEvent& e : trace.events) {
    if (e.type == TraceEventType::kDecision && !e.detail.empty()) {
      outcomes[e.txn].insert(e.detail);
    }
  }
  for (const auto& [txn, set] : outcomes) {
    if (set.size() > 1) {
      ++findings;
      std::string joined;
      for (const std::string& o : set) {
        if (!joined.empty()) joined += " vs ";
        joined += o;
      }
      std::printf("  ATOMICITY   txn %llu decided inconsistently: %s\n",
                  static_cast<unsigned long long>(txn), joined.c_str());
    }
  }

  // Invariant violations the runtime observer recorded into the trace.
  for (const TraceEvent& e : trace.events) {
    if (e.type != TraceEventType::kInvariantViolation) continue;
    ++findings;
    std::printf("  VIOLATION   txn %llu at t=%llu site %u: %s\n",
                static_cast<unsigned long long>(e.txn),
                static_cast<unsigned long long>(e.at), e.site,
                e.detail.c_str());
  }

  // Orphan messages: a send whose seq never shows up as deliver or drop.
  // (With a ring-buffer trace the send may simply have been evicted, so
  // orphans are only meaningful on complete traces.)
  std::map<uint64_t, const TraceEvent*> pending;
  for (const TraceEvent& e : trace.events) {
    if (e.seq == 0) continue;
    if (e.type == TraceEventType::kMessageSent) {
      pending[e.seq] = &e;
    } else if (e.type == TraceEventType::kMessageDelivered ||
               e.type == TraceEventType::kMessageDropped) {
      pending.erase(e.seq);
    }
  }
  for (const auto& [seq, e] : pending) {
    ++findings;
    std::printf("  ORPHAN      seq %llu: %s sent at t=%llu by site %u, "
                "never delivered or dropped\n",
                static_cast<unsigned long long>(seq), e->detail.c_str(),
                static_cast<unsigned long long>(e->at), e->site);
  }

  if (findings == 0) std::printf("  none\n");
  return findings;
}

/// Rebuilds the ProtocolSpec named by the trace's meta line. Witness traces
/// from nbcp-explore's mutation self-test name their protocol
/// "<base>+<mutation>"; the mutant is reconstructed so offline analyses run
/// against the spec that produced the trace. Returns nullopt (with an
/// explanation on stderr) when the meta line is unusable.
std::optional<ProtocolSpec> SpecFromMeta(const ImportedTrace& trace) {
  if (trace.meta.protocol.empty() || trace.meta.num_sites < 2) {
    std::fprintf(stderr,
                 "error: trace has no usable meta line (protocol/num_sites); "
                 "cannot replay\n");
    return std::nullopt;
  }
  auto spec = cli::ResolveProtocolName(trace.meta.protocol);
  if (!spec.ok()) {
    std::fprintf(stderr, "error: cannot rebuild protocol '%s': %s\n",
                 trace.meta.protocol.c_str(),
                 spec.status().ToString().c_str());
    return std::nullopt;
  }
  return std::move(*spec);
}

/// Replays `trace` through an offline observer. Returns the result, or
/// nullopt with an explanation when the trace cannot be replayed (unknown
/// protocol, missing metadata).
std::optional<ReplayResult> RunReplay(const ImportedTrace& trace) {
  auto spec = SpecFromMeta(trace);
  if (!spec.has_value()) return std::nullopt;
  bool truncated = trace.meta.dropped != 0;
  auto replay = ReplayGlobalStates(*spec, trace.meta.num_sites, trace.events,
                                   ObserverConfig{}, truncated);
  if (!replay.ok()) {
    std::fprintf(stderr, "error: replay failed: %s\n",
                 replay.status().ToString().c_str());
    return std::nullopt;
  }
  return std::move(*replay);
}

int CmdReplay(const std::string& path) {
  auto trace = LoadTrace(path);
  if (!trace.has_value()) return 1;
  auto replay = RunReplay(*trace);
  if (!replay.has_value()) return 1;

  bool truncated = trace->meta.dropped != 0;
  std::printf("replay: %s (%s, %zu sites)\n", path.c_str(),
              trace->meta.protocol.c_str(), trace->meta.num_sites);
  if (truncated) {
    std::printf(
        "  trace is truncated (%llu events evicted): phantom-message "
        "checks and timeline comparison skipped\n",
        static_cast<unsigned long long>(trace->meta.dropped));
  }
  std::printf("  %zu events consumed, %llu invariant checks\n",
              replay->events,
              static_cast<unsigned long long>(replay->stats.checks));
  std::printf("  global states reconstructed: %zu (recorded in trace: %zu)\n",
              replay->timeline.size(), replay->recorded_timeline);
  std::printf("  violations recomputed: %zu (recorded in trace: %zu)\n",
              replay->violations.size(), replay->recorded_violations);
  for (const InvariantViolation& v : replay->violations) {
    std::printf("    t=%-8llu txn %-4llu site %-3u %s\n",
                static_cast<unsigned long long>(v.at),
                static_cast<unsigned long long>(v.txn), v.site,
                v.ToString().c_str());
  }

  if (replay->first_mismatch != SIZE_MAX) {
    size_t i = replay->first_mismatch;
    std::printf("  TIMELINE MISMATCH at global state #%zu:\n", i);
    size_t seen = 0;
    const std::string* recorded = nullptr;
    for (const TraceEvent& e : trace->events) {
      if (e.type == TraceEventType::kGlobalState && seen++ == i) {
        recorded = &e.detail;
        break;
      }
    }
    std::printf("    recorded:   %s\n",
                recorded != nullptr ? recorded->c_str() : "(missing)");
    std::printf("    recomputed: %s\n", i < replay->timeline.size()
                                            ? replay->timeline[i].c_str()
                                            : "(missing)");
    return 4;
  }
  if (replay->recorded_timeline > 0) {
    std::printf("  recorded timeline verified: recomputation matches\n");
  }
  return replay->violations.empty() ? 0 : 3;
}

/// The structural skeleton of a trace used for diffing: the global-state
/// timeline when present (and not suppressed), else the state/vote/decision
/// event sequence.
std::vector<std::string> StructuralSequence(const ImportedTrace& trace,
                                            bool allow_global,
                                            bool* used_global) {
  std::vector<std::string> out;
  if (allow_global) {
    for (const TraceEvent& e : trace.events) {
      if (e.type == TraceEventType::kGlobalState) out.push_back(e.detail);
    }
    if (!out.empty()) {
      *used_global = true;
      return out;
    }
  }
  *used_global = false;
  for (const TraceEvent& e : trace.events) {
    if (e.type == TraceEventType::kStateChange ||
        e.type == TraceEventType::kVoteCast ||
        e.type == TraceEventType::kDecision) {
      out.push_back("site " + std::to_string(e.site) + " " +
                    ToString(e.type) + " " + e.detail);
    }
  }
  return out;
}

int CmdDiff(const std::string& path_a, const std::string& path_b) {
  auto a = LoadTrace(path_a);
  if (!a.has_value()) return 1;
  auto b = LoadTrace(path_b);
  if (!b.has_value()) return 1;

  std::printf("diff: %s vs %s\n", path_a.c_str(), path_b.c_str());
  if (a->meta.protocol != b->meta.protocol ||
      a->meta.num_sites != b->meta.num_sites) {
    std::printf("  meta differs: %s/%zu sites vs %s/%zu sites\n",
                a->meta.protocol.c_str(), a->meta.num_sites,
                b->meta.protocol.c_str(), b->meta.num_sites);
  }

  bool global_a = false, global_b = false;
  std::vector<std::string> seq_a = StructuralSequence(*a, true, &global_a);
  std::vector<std::string> seq_b = StructuralSequence(*b, true, &global_b);
  const char* basis = "global-state timeline";
  if (!global_a || !global_b) {
    // At least one trace was recorded without the observer: compare on the
    // common denominator.
    seq_a = StructuralSequence(*a, false, &global_a);
    seq_b = StructuralSequence(*b, false, &global_b);
    basis = "state/vote/decision events";
  }

  size_t divergence = SIZE_MAX;
  size_t common = std::min(seq_a.size(), seq_b.size());
  for (size_t i = 0; i < common; ++i) {
    if (seq_a[i] != seq_b[i]) {
      divergence = i;
      break;
    }
  }
  if (divergence == SIZE_MAX && seq_a.size() != seq_b.size()) {
    divergence = common;
  }

  std::printf("  comparing %zu vs %zu %s entries\n", seq_a.size(),
              seq_b.size(), basis);
  if (divergence == SIZE_MAX) {
    std::printf("  structurally identical\n");
  } else {
    std::printf("  FIRST DIVERGENCE at entry #%zu:\n", divergence);
    std::printf("    a: %s\n", divergence < seq_a.size()
                                   ? seq_a[divergence].c_str()
                                   : "(end of trace)");
    std::printf("    b: %s\n", divergence < seq_b.size()
                                   ? seq_b[divergence].c_str()
                                   : "(end of trace)");
  }

  // Per-phase latency deltas (mean over closed spans).
  std::map<CommitPhase, LatencyHistogram> phases_a, phases_b;
  for (const PhaseSpan& s : a->spans) {
    if (!s.open) phases_a[s.phase].Record(s.duration());
  }
  for (const PhaseSpan& s : b->spans) {
    if (!s.open) phases_b[s.phase].Record(s.duration());
  }
  std::printf("\n  per-phase latency deltas (mean us, b - a)\n");
  std::printf("    %-13s %9s %9s %9s\n", "phase", "a", "b", "delta");
  for (CommitPhase phase :
       {CommitPhase::kVoteRequest, CommitPhase::kVote, CommitPhase::kPrecommit,
        CommitPhase::kDecision, CommitPhase::kTermination}) {
    auto ia = phases_a.find(phase);
    auto ib = phases_b.find(phase);
    if (ia == phases_a.end() && ib == phases_b.end()) continue;
    double mean_a = ia == phases_a.end() ? 0.0 : ia->second.mean();
    double mean_b = ib == phases_b.end() ? 0.0 : ib->second.mean();
    std::printf("    %-13s %9.1f %9.1f %+9.1f\n", ToString(phase).c_str(),
                mean_a, mean_b, mean_b - mean_a);
  }

  return divergence == SIZE_MAX ? 0 : 4;
}

/// Validates recorded clock stamps of every transaction against the
/// happens-before DAG; prints one line per violated edge. Returns the
/// number of violations (0 on unstamped traces — nothing to check).
size_t CheckCausality(const ImportedTrace& trace) {
  size_t violations = 0;
  for (TransactionId txn : TraceTransactions(trace.events)) {
    CausalDag dag = CausalDag::Build(trace.events, txn);
    std::vector<std::string> findings;
    violations += dag.ValidateClocks(&findings);
    for (const std::string& f : findings) {
      std::printf("  CAUSALITY   txn %llu %s\n",
                  static_cast<unsigned long long>(txn), f.c_str());
    }
  }
  return violations;
}

int CmdCheck(const std::string& path, bool strict) {
  auto trace = LoadTrace(path);
  if (!trace.has_value()) return 1;

  std::printf("check: %s (%s, %zu sites, %zu events)%s\n", path.c_str(),
              trace->meta.protocol.empty() ? "?" : trace->meta.protocol.c_str(),
              trace->meta.num_sites, trace->events.size(),
              strict ? " [strict]" : "");
  if (trace->meta.dropped != 0) {
    // Non-fatal: a ring-buffered trace is legitimately incomplete, but the
    // checks below only see what survived eviction.
    std::printf(
        "warning: incomplete trace — %llu event(s) evicted by the ring "
        "buffer; checks cover the retained suffix only\n",
        static_cast<unsigned long long>(trace->meta.dropped));
  }
  std::printf("anomalies\n");
  size_t findings = PrintAnomalies(*trace);
  findings += CheckCausality(*trace);

  if (strict) {
    auto replay = RunReplay(*trace);
    if (!replay.has_value()) return 1;
    if (!replay->violations.empty()) {
      std::printf("replay recomputed %zu violation(s)\n",
                  replay->violations.size());
      for (const InvariantViolation& v : replay->violations) {
        std::printf("  t=%-8llu txn %-4llu site %-3u %s\n",
                    static_cast<unsigned long long>(v.at),
                    static_cast<unsigned long long>(v.txn), v.site,
                    v.ToString().c_str());
      }
      findings += replay->violations.size();
    }
    if (replay->first_mismatch != SIZE_MAX) {
      std::printf("replay: recorded timeline diverges at entry #%zu\n",
                  replay->first_mismatch);
      ++findings;
    }
  }

  if (findings == 0) {
    std::printf("OK\n");
  } else {
    std::printf("FAILED: %zu finding(s)\n", findings);
  }
  return findings == 0 ? 0 : 3;
}

/// Transactions to report on: the one named by --txn (must exist), or all.
std::optional<std::vector<TransactionId>> SelectTransactions(
    const ImportedTrace& trace, std::optional<TransactionId> requested) {
  std::vector<TransactionId> txns = TraceTransactions(trace.events);
  if (!requested.has_value()) return txns;
  for (TransactionId txn : txns) {
    if (txn == *requested) return std::vector<TransactionId>{*requested};
  }
  std::fprintf(stderr, "error: transaction %llu is not in the trace\n",
               static_cast<unsigned long long>(*requested));
  return std::nullopt;
}

int CmdCriticalPath(int argc, char** argv) {
  std::string path;
  std::optional<TransactionId> txn;
  bool json = false;
  std::string chrome_out;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--txn" && i + 1 < argc) {
      uint64_t parsed = 0;
      if (!cli::ParseUint(argv[++i], &parsed)) {
        std::fprintf(stderr, "error: --txn requires an unsigned integer\n");
        return 2;
      }
      txn = static_cast<TransactionId>(parsed);
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--chrome" && i + 1 < argc) {
      chrome_out = argv[++i];
    } else if (path.empty()) {
      path = arg;
    } else {
      PrintUsage();
      return 2;
    }
  }
  if (path.empty()) {
    PrintUsage();
    return 2;
  }
  auto trace = LoadTrace(path);
  if (!trace.has_value()) return 1;
  auto txns = SelectTransactions(*trace, txn);
  if (!txns.has_value()) return 1;
  if (txns->empty()) {
    std::fprintf(stderr, "error: trace has no transactions\n");
    return 1;
  }
  if (!chrome_out.empty() && txns->size() > 1) {
    std::fprintf(stderr,
                 "error: --chrome emits one transaction's path; pick one "
                 "with --txn\n");
    return 2;
  }

  Json all = Json::Array();
  for (TransactionId id : *txns) {
    CausalDag dag = CausalDag::Build(trace->events, id);
    CriticalPathReport report = dag.CriticalPath(trace->spans);
    report.protocol = trace->meta.protocol;
    if (dag.unmatched_deliveries() > 0 && !json) {
      std::printf("note: txn %llu has %zu delivery(ies) without a recorded "
                  "send (truncated trace) — coverage may be < 1\n",
                  static_cast<unsigned long long>(id),
                  dag.unmatched_deliveries());
    }
    if (json) {
      all.Append(CriticalPathToJson(report));
    } else {
      std::printf("%s\n", report.ToText().c_str());
    }
    if (!chrome_out.empty()) {
      Status s = WriteFile(chrome_out, CriticalPathChromeTrace(report));
      if (!s.ok()) {
        std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
        return 1;
      }
      if (!json) {
        std::printf("critical-path chrome trace written to %s\n",
                    chrome_out.c_str());
      }
    }
  }
  if (json) {
    std::printf("%s\n", (all.size() == 1 ? all.items()[0] : all).Dump(1).c_str());
  }
  return 0;
}

int CmdCausal(int argc, char** argv) {
  std::string path;
  std::optional<TransactionId> txn;
  bool json = false;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--txn" && i + 1 < argc) {
      uint64_t parsed = 0;
      if (!cli::ParseUint(argv[++i], &parsed)) {
        std::fprintf(stderr, "error: --txn requires an unsigned integer\n");
        return 2;
      }
      txn = static_cast<TransactionId>(parsed);
    } else if (arg == "--json") {
      json = true;
    } else if (path.empty()) {
      path = arg;
    } else {
      PrintUsage();
      return 2;
    }
  }
  if (path.empty()) {
    PrintUsage();
    return 2;
  }
  auto trace = LoadTrace(path);
  if (!trace.has_value()) return 1;
  auto txns = SelectTransactions(*trace, txn);
  if (!txns.has_value()) return 1;

  size_t total_violations = 0;
  Json all = Json::Array();
  for (TransactionId id : *txns) {
    CausalDag dag = CausalDag::Build(trace->events, id);
    size_t message_edges = 0;
    for (const CausalEdge& e : dag.edges()) {
      if (e.message) ++message_edges;
    }
    size_t stamped = 0;
    for (const TraceEvent& e : dag.events()) {
      if (e.stamp.stamped()) ++stamped;
    }
    std::vector<std::string> findings;
    size_t violations = dag.ValidateClocks(&findings);
    total_violations += violations;
    if (json) {
      Json j = Json::Object();
      j["txn"] = id;
      j["events"] = static_cast<uint64_t>(dag.events().size());
      j["edges"] = static_cast<uint64_t>(dag.edges().size());
      j["message_edges"] = static_cast<uint64_t>(message_edges);
      j["unmatched_deliveries"] =
          static_cast<uint64_t>(dag.unmatched_deliveries());
      j["stamped_events"] = static_cast<uint64_t>(stamped);
      j["violations"] = static_cast<uint64_t>(violations);
      Json flist = Json::Array();
      for (const std::string& f : findings) flist.Append(Json(f));
      j["findings"] = std::move(flist);
      all.Append(std::move(j));
    } else {
      std::printf("txn %llu: %zu events (%zu stamped), %zu edges "
                  "(%zu message, %zu unmatched deliveries)\n",
                  static_cast<unsigned long long>(id), dag.events().size(),
                  stamped, dag.edges().size(), message_edges,
                  dag.unmatched_deliveries());
      for (const std::string& f : findings) {
        std::printf("  CAUSALITY %s\n", f.c_str());
      }
    }
  }
  if (json) {
    std::printf("%s\n", all.Dump(1).c_str());
  } else if (total_violations == 0) {
    std::printf("causality OK: recorded stamps are consistent with "
                "happens-before across %zu transaction(s)\n",
                txns->size());
  } else {
    std::printf("FAILED: %zu causality violation(s)\n", total_violations);
  }
  return total_violations == 0 ? 0 : 3;
}

int CmdBlocking(int argc, char** argv) {
  std::string path;
  std::optional<TransactionId> txn;
  bool json = false;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--txn" && i + 1 < argc) {
      uint64_t parsed = 0;
      if (!cli::ParseUint(argv[++i], &parsed)) {
        std::fprintf(stderr, "error: --txn requires an unsigned integer\n");
        return 2;
      }
      txn = static_cast<TransactionId>(parsed);
    } else if (arg == "--json") {
      json = true;
    } else if (path.empty()) {
      path = arg;
    } else {
      PrintUsage();
      return 2;
    }
  }
  if (path.empty()) {
    PrintUsage();
    return 2;
  }
  auto trace = LoadTrace(path);
  if (!trace.has_value()) return 1;
  auto spec = SpecFromMeta(*trace);
  if (!spec.has_value()) return 1;

  auto replay = ReplayBlocking(*spec, trace->meta.num_sites, trace->events);
  if (!replay.ok()) {
    std::fprintf(stderr, "error: %s\n", replay.status().ToString().c_str());
    return 1;
  }

  std::vector<BlockedSpan> spans;
  for (const BlockedSpan& s : replay->spans) {
    if (!txn.has_value() || s.txn == *txn) spans.push_back(s);
  }
  SimTime now = replay->last_event_at;

  size_t unresolved = 0;
  for (const BlockedSpan& s : spans) {
    if (s.open()) ++unresolved;
  }

  if (json) {
    Json root = Json::Object();
    root["protocol"] = Json(trace->meta.protocol);
    root["num_sites"] = Json(static_cast<uint64_t>(trace->meta.num_sites));
    root["spans_opened"] = Json(replay->stats.opened);
    root["unresolved"] = Json(static_cast<uint64_t>(unresolved));
    root["declared_blocked"] = Json(replay->stats.declared_blocked);
    root["crosscheck_failures"] = Json(replay->stats.crosscheck_failures);
    Json list = Json::Array();
    for (const BlockedSpan& s : spans) {
      Json j = Json::Object();
      j["txn"] = Json(static_cast<uint64_t>(s.txn));
      j["site"] = Json(static_cast<uint64_t>(s.site));
      j["opened_at"] = Json(s.opened_at);
      if (!s.open()) j["closed_at"] = Json(s.closed_at);
      j["blocked_us"] = Json(s.BlockedFor(now));
      j["cause"] = Json(ToString(s.cause));
      j["resolution"] = Json(ToString(s.resolution));
      if (s.declared_blocked) j["declared_blocked"] = Json(true);
      for (size_t c = 0; c < kNumBlockedCauses; ++c) {
        if (s.cause_us[c] > 0) {
          j[ToString(static_cast<BlockedCause>(c)) + "_us"] =
              Json(s.cause_us[c]);
        }
      }
      list.Append(std::move(j));
    }
    root["spans"] = std::move(list);
    std::printf("%s\n", root.Dump(1).c_str());
    return unresolved > 0 || replay->stats.crosscheck_failures > 0 ? 3 : 0;
  }

  std::printf("blocking: %s (%s, %zu sites)\n", path.c_str(),
              trace->meta.protocol.c_str(), trace->meta.num_sites);
  std::printf(
      "  %llu span(s) opened: %llu resolved by decision, %llu by "
      "termination, %llu abandoned (site crash), %zu unresolved\n",
      static_cast<unsigned long long>(replay->stats.opened),
      static_cast<unsigned long long>(replay->stats.resolved_decision),
      static_cast<unsigned long long>(replay->stats.resolved_termination),
      static_cast<unsigned long long>(replay->stats.abandoned_crash),
      unresolved);

  if (spans.empty()) {
    std::printf("  no blocked spans%s\n",
                txn.has_value() ? " for this transaction" : "");
    return 0;
  }

  // Per-transaction blocked-time table.
  struct PerTxn {
    size_t spans = 0, unresolved = 0;
    SimTime total = 0, max = 0;
    bool declared = false;
  };
  std::map<TransactionId, PerTxn> by_txn;
  for (const BlockedSpan& s : spans) {
    PerTxn& t = by_txn[s.txn];
    ++t.spans;
    if (s.open()) ++t.unresolved;
    SimTime d = s.BlockedFor(now);
    t.total += d;
    t.max = std::max(t.max, d);
    t.declared = t.declared || s.declared_blocked;
  }
  std::printf("\nper-transaction blocked time (us)\n");
  std::printf("  %-6s %6s %10s %12s %12s %9s\n", "txn", "spans", "unresolved",
              "total", "max", "declared");
  for (const auto& [id, t] : by_txn) {
    std::printf("  %-6llu %6zu %10zu %12llu %12llu %9s\n",
                static_cast<unsigned long long>(id), t.spans, t.unresolved,
                static_cast<unsigned long long>(t.total),
                static_cast<unsigned long long>(t.max),
                t.declared ? "BLOCKED" : "-");
  }

  // Cause breakdown: time attributed to each cause across all spans.
  SimTime cause_total[kNumBlockedCauses] = {};
  size_t cause_spans[kNumBlockedCauses] = {};
  for (const BlockedSpan& s : spans) {
    for (size_t c = 0; c < kNumBlockedCauses; ++c) {
      if (s.cause_us[c] > 0) {
        cause_total[c] += s.cause_us[c];
        ++cause_spans[c];
      }
    }
  }
  std::printf("\ncause breakdown\n");
  std::printf("  %-18s %6s %12s\n", "cause", "spans", "total_us");
  for (size_t c = 0; c < kNumBlockedCauses; ++c) {
    if (cause_spans[c] == 0) continue;
    std::printf("  %-18s %6zu %12llu\n",
                ToString(static_cast<BlockedCause>(c)).c_str(),
                cause_spans[c],
                static_cast<unsigned long long>(cause_total[c]));
  }

  // Worst blocked sites.
  std::map<SiteId, std::pair<size_t, SimTime>> by_site;
  for (const BlockedSpan& s : spans) {
    by_site[s.site].first += 1;
    by_site[s.site].second += s.BlockedFor(now);
  }
  std::vector<std::pair<SiteId, std::pair<size_t, SimTime>>> worst(
      by_site.begin(), by_site.end());
  std::sort(worst.begin(), worst.end(), [](const auto& a, const auto& b) {
    return a.second.second > b.second.second;
  });
  std::printf("\nworst blocked sites\n");
  std::printf("  %-6s %6s %12s\n", "site", "spans", "blocked_us");
  for (size_t i = 0; i < worst.size() && i < 5; ++i) {
    std::printf("  %-6u %6zu %12llu\n", worst[i].first,
                worst[i].second.first,
                static_cast<unsigned long long>(worst[i].second.second));
  }

  if (replay->stats.crosscheck_failures > 0) {
    std::printf("\nCROSS-CHECK FAILURES: %llu (stall detector disagrees "
                "with the global-state observer)\n",
                static_cast<unsigned long long>(
                    replay->stats.crosscheck_failures));
    for (const std::string& d : replay->crosscheck_details) {
      std::printf("  %s\n", d.c_str());
    }
  }

  if (unresolved > 0) {
    std::printf("\nBLOCKED: %zu span(s) never resolved — the protocol left "
                "operational sites stuck\n",
                unresolved);
  } else {
    std::printf("\nall spans resolved: no operational site stayed blocked\n");
  }
  return unresolved > 0 || replay->stats.crosscheck_failures > 0 ? 3 : 0;
}

int CmdOverview(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--txn" && i + 1 < argc) {
      uint64_t parsed = 0;
      if (!cli::ParseUint(argv[++i], &parsed)) {
        std::fprintf(stderr, "error: --txn requires an unsigned integer\n");
        return 2;
      }
      opt.txn = static_cast<TransactionId>(parsed);
    } else if (arg == "--timeline") {
      opt.timeline = true;
    } else if (arg == "--chrome" && i + 1 < argc) {
      opt.chrome_out = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (opt.path.empty()) {
      opt.path = arg;
    } else {
      PrintUsage();
      return 2;
    }
  }
  if (opt.path.empty()) {
    PrintUsage();
    return 2;
  }

  auto trace = LoadTrace(opt.path);
  if (!trace.has_value()) return 1;

  std::set<TransactionId> txns;
  for (const TraceEvent& e : trace->events) {
    if (e.txn != kNoTransaction) txns.insert(e.txn);
  }
  std::printf("trace: %s\n", opt.path.c_str());
  std::printf("  protocol %s, %zu sites, %zu events, %zu spans, "
              "%zu transaction(s)\n",
              trace->meta.protocol.empty() ? "?" : trace->meta.protocol.c_str(),
              trace->meta.num_sites, trace->events.size(),
              trace->spans.size(), txns.size());
  if (trace->meta.dropped != 0) {
    std::printf("  INCOMPLETE: %llu event(s) evicted by the ring buffer "
                "before export\n",
                static_cast<unsigned long long>(trace->meta.dropped));
  }
  std::printf("\n");

  PrintPhaseBreakdown(trace->spans);
  PrintMessageStats(trace->events);
  if (opt.timeline) PrintTimeline(trace->events, opt.txn);
  if (opt.txn.has_value()) PrintTransaction(*trace, *opt.txn);

  std::printf("\nanomalies\n");
  size_t findings = PrintAnomalies(*trace);

  if (!opt.chrome_out.empty()) {
    TraceMeta meta = trace->meta;
    Status s = WriteFile(opt.chrome_out,
                         ExportChromeTrace(trace->events, trace->spans, meta));
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("\nchrome trace written to %s\n", opt.chrome_out.c_str());
  }
  return findings == 0 ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2) {
    std::string cmd = argv[1];
    if (cmd == "replay") {
      if (argc != 3) {
        PrintUsage();
        return 2;
      }
      return CmdReplay(argv[2]);
    }
    if (cmd == "diff") {
      if (argc != 4) {
        PrintUsage();
        return 2;
      }
      return CmdDiff(argv[2], argv[3]);
    }
    if (cmd == "check") {
      bool strict = false;
      std::string path;
      for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--strict") {
          strict = true;
        } else if (path.empty()) {
          path = arg;
        } else {
          PrintUsage();
          return 2;
        }
      }
      if (path.empty()) {
        PrintUsage();
        return 2;
      }
      return CmdCheck(path, strict);
    }
    if (cmd == "critical-path") {
      return CmdCriticalPath(argc, argv);
    }
    if (cmd == "causal") {
      return CmdCausal(argc, argv);
    }
    if (cmd == "blocking") {
      return CmdBlocking(argc, argv);
    }
  }
  return CmdOverview(argc, argv);
}
