// nbcp-race: semantic message-race detection and confluence classification.
//
//   nbcp-race <builtin-name|file.nbcp> [options]
//   nbcp-race list
//
// Scouts deterministic executions of the simulated runtime, collects every
// pair of pending deliveries to the same site whose sends are unordered by
// happens-before (vector clocks), and classifies each pair by re-executing
// both delivery orders from the identical prefix. A pair is *confluent*
// when both orders leave the receiver in the same FSA state, emit the same
// messages inside the two-delivery window, and finish the run with
// identical per-site states and outcomes; otherwise it is an
// *outcome-changing race* and a replayable witness schedule pair is
// retained (each schedule replays under `nbcp-explore replay`, each trace
// under `nbcp-trace check --strict`). With --max-crashes 1, the base
// schedule is additionally perturbed by one injected crash at every
// (decision index, site), exposing races in termination and election
// traffic.
//
// Options:
//   -n <N>              sites in the executed population (default 2)
//   --votes <v1v2...>   analyze one preset vote vector, e.g. "yn" or "10"
//                       (default: all 2^n vectors)
//   --max-crashes <N>   0 = failure-free, 1 = crash-perturbed (default 0)
//   --max-pairs <N>     candidate-pair classification budget (default 100000)
//   --max-depth <N>     choices per execution (default 10000)
//   --mutate <name>     analyze a mutated spec (see `nbcp-explore mutations`)
//   --seed <N>          simulator seed (default 42)
//   --json              machine-readable report on stdout
//   --witness-dir <dir> write witness schedule/trace pairs into <dir>
//
// Exit codes (CI contract):
//   0  every examined pair is confluent
//   1  usage or infrastructure error
//   2  outcome-changing race (transient divergence; finals agree or drift)
//   3  decision-divergent race: the delivery order decides commit vs abort
//   4  inconclusive: a pair/depth/step bound was exhausted, no race found
#include <cstdio>
#include <string>
#include <vector>

#include "explore/explorer.h"
#include "explore/mutate.h"
#include "explore/race.h"
#include "obs/export.h"
#include "protocols/registry.h"
#include "cli_common.h"

using namespace nbcp;
using cli::Fail;
using cli::LoadSpec;
using cli::ParseSize;
using cli::ProtocolLabel;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: nbcp-race <builtin-name|file.nbcp> [-n N] [--votes V]\n"
      "                 [--max-crashes N] [--max-pairs N] [--max-depth N]\n"
      "                 [--mutate NAME] [--seed N] [--json]\n"
      "                 [--witness-dir DIR]\n"
      "       nbcp-race list\n");
  return 1;
}

/// "yn", "10", "YN" -> {true, false}.
bool ParseVotes(const std::string& text, std::vector<bool>* out) {
  out->clear();
  for (char c : text) {
    if (c == 'y' || c == 'Y' || c == '1') {
      out->push_back(true);
    } else if (c == 'n' || c == 'N' || c == '0') {
      out->push_back(false);
    } else {
      return false;
    }
  }
  return !out->empty();
}

/// Writes each witness pair as two schedule files + two trace files.
Status WriteWitnessPairs(const std::string& dir, const std::string& label,
                         size_t num_sites,
                         const std::vector<RaceWitnessPair>& witnesses,
                         std::vector<std::string>* files) {
  size_t index = 0;
  for (const RaceWitnessPair& w : witnesses) {
    std::string base = dir + "/" + label + "-race-" + std::to_string(index++);
    struct Side {
      const char* tag;
      const std::vector<ScheduleChoice>& schedule;
      const std::string& trace;
    };
    for (const Side& side : {Side{"ab", w.schedule_ab, w.trace_ab_jsonl},
                             Side{"ba", w.schedule_ba, w.trace_ba_jsonl}}) {
      std::string stem = base + "-" + side.tag;
      Status s = WriteFile(stem + ".schedule.jsonl",
                           ScheduleToJsonLines(label, num_sites,
                                               w.verdict.votes,
                                               side.schedule));
      if (!s.ok()) return s;
      files->push_back(stem + ".schedule.jsonl");
      if (!side.trace.empty()) {
        s = WriteFile(stem + ".trace.jsonl", side.trace);
        if (!s.ok()) return s;
        files->push_back(stem + ".trace.jsonl");
      }
    }
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string target = argv[1];
  if (target == "list") {
    for (const std::string& name : BuiltinProtocolNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  RaceOptions options;
  bool json = false;
  std::string witness_dir;
  std::string mutation;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-n") {
      if (++i >= argc || !ParseSize(argv[i], &options.num_sites) ||
          options.num_sites < 2) {
        return Fail("-n requires an integer >= 2");
      }
    } else if (arg == "--votes") {
      if (++i >= argc || !ParseVotes(argv[i], &options.votes)) {
        return Fail("--votes requires a y/n (or 1/0) string, e.g. yn");
      }
      options.all_vote_vectors = false;
    } else if (arg == "--max-crashes") {
      if (++i >= argc || !ParseSize(argv[i], &options.max_crashes)) {
        return Fail("--max-crashes requires an integer");
      }
    } else if (arg == "--max-pairs") {
      if (++i >= argc || !ParseSize(argv[i], &options.max_pairs) ||
          options.max_pairs == 0) {
        return Fail("--max-pairs requires a positive integer");
      }
    } else if (arg == "--max-depth") {
      if (++i >= argc || !ParseSize(argv[i], &options.max_depth) ||
          options.max_depth == 0) {
        return Fail("--max-depth requires a positive integer");
      }
    } else if (arg == "--mutate") {
      if (++i >= argc) return Fail("--mutate requires a mutation name");
      mutation = argv[i];
    } else if (arg == "--seed") {
      size_t seed = 0;
      if (++i >= argc || !ParseSize(argv[i], &seed)) {
        return Fail("--seed requires an integer");
      }
      options.seed = seed;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--witness-dir") {
      if (++i >= argc) return Fail("--witness-dir requires a directory");
      witness_dir = argv[i];
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return Usage();
    }
  }

  auto spec = LoadSpec(target);
  if (!spec.ok()) return Fail(spec.status().ToString());
  std::string label = ProtocolLabel(target, *spec);

  ProtocolSpec impl = *spec;
  if (!mutation.empty()) {
    auto mutated = MutateSpec(impl, mutation);
    if (!mutated.ok()) return Fail(mutated.status().ToString());
    impl = std::move(*mutated);
    label += "+" + mutation;
  }

  auto report = AnalyzeRaces(impl, options);
  if (!report.ok()) return Fail(report.status().ToString());

  std::vector<std::string> witness_files;
  if (!witness_dir.empty()) {
    Status s = WriteWitnessPairs(witness_dir, label, options.num_sites,
                                 report->witnesses, &witness_files);
    if (!s.ok()) return Fail(s.ToString());
  }

  if (json) {
    Json doc = report->ToJson();
    Json files = Json::Array();
    for (const std::string& path : witness_files) files.Append(path);
    doc["witness_files"] = std::move(files);
    std::printf("%s\n", doc.Dump(2).c_str());
  } else {
    std::printf("%s", report->Render().c_str());
    for (const std::string& path : witness_files) {
      std::printf("witness: %s\n", path.c_str());
    }
  }
  return report->ExitCode();
}
