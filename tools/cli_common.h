#ifndef NBCP_TOOLS_CLI_COMMON_H_
#define NBCP_TOOLS_CLI_COMMON_H_

// Helpers shared by the nbcp-* command-line tools (argument parsing, spec
// loading, report labeling). Header-only: every tool is a single
// translation unit and the helpers are small.

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/result.h"
#include "explore/mutate.h"
#include "fsa/protocol_spec.h"
#include "fsa/spec_parser.h"
#include "protocols/registry.h"

namespace nbcp {
namespace cli {

/// Prints `error: <message>` on stderr and returns the usage exit code.
inline int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

/// Strict unsigned parser: rejects empty strings, signs, trailing garbage
/// and overflow. std::stoul would accept "5x" and throw (uncaught) on
/// "abc" — command-line input must never terminate a tool that way.
inline bool ParseUint(const char* text, uint64_t* out) {
  if (text == nullptr || *text == '\0' || *text == '-' || *text == '+') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = value;
  return true;
}

/// ParseUint narrowed to size_t (option values that size data structures).
inline bool ParseSize(const char* text, size_t* out) {
  uint64_t value = 0;
  if (!ParseUint(text, &value)) return false;
  *out = static_cast<size_t>(value);
  return true;
}

/// Loads a protocol: builtin names take precedence; anything else is read
/// as a spec file in the fsa/spec_parser.h text format.
inline Result<ProtocolSpec> LoadSpec(const std::string& name_or_path) {
  auto builtin = MakeProtocol(name_or_path);
  if (builtin.ok()) return builtin;
  std::ifstream in(name_or_path);
  if (!in) {
    return Status::NotFound("'" + name_or_path +
                            "' is neither a builtin protocol nor a readable "
                            "spec file");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseProtocolSpec(text.str());
}

/// Label for reports + witness file names: the registry name when the
/// target is a builtin, else the spec's own name with a fallback.
inline std::string ProtocolLabel(const std::string& name_or_path,
                                 const ProtocolSpec& spec) {
  if (MakeProtocol(name_or_path).ok()) return name_or_path;
  return spec.name().empty() ? "spec" : spec.name();
}

/// Resolves a registry-style protocol name that may carry a mutation
/// suffix ("<base>+<mutation>", the form nbcp-explore writes into witness
/// metadata) back into the spec that produced it.
inline Result<ProtocolSpec> ResolveProtocolName(const std::string& name) {
  std::string base = name;
  std::string mutation;
  size_t plus = base.find('+');
  if (plus != std::string::npos) {
    mutation = base.substr(plus + 1);
    base = base.substr(0, plus);
  }
  auto spec = MakeProtocol(base);
  if (!spec.ok()) return spec.status();
  if (mutation.empty()) return spec;
  return MutateSpec(*spec, mutation);
}

}  // namespace cli
}  // namespace nbcp

#endif  // NBCP_TOOLS_CLI_COMMON_H_
