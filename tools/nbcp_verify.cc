// nbcp-verify: counterexample-producing static verifier for commit
// protocol specifications.
//
//   nbcp-verify <builtin-name|file.nbcp> [options]
//   nbcp-verify list
//
// Pipeline per protocol: spec lint -> symmetry-reduced reachable state
// graph -> concurrency sets -> Fundamental Nonblocking Theorem (C1/C2) ->
// resiliency corollary -> failure-augmented graph (blocking detection) ->
// shortest concrete witness extraction. Witness executions export as
// nbcp-trace JSONL (replayable with `nbcp-trace replay`/`check`).
//
// Options:
//   -n <N>               sites in the analyzed population (default 3)
//   --max-nodes <N>      state-graph node budget (default 500000)
//   --no-reduction       disable symmetry reduction
//   --compare-unreduced  also build the unreduced graph (reports factor)
//   --no-failure-graph   skip failure-graph / blocking analysis
//   --no-witnesses       skip witness extraction
//   --parametric         also run the counter-abstracted all-n stage:
//                        abstract C1/C2 over every site population at once,
//                        verdict-stability cutoff detection, and minimal-n
//                        concretization of abstract violations (traces plus
//                        replayable nbcp-explore schedules)
//   --param-max-n <N>    cutoff/concretization search bound (default 6)
//   --synthesized        verify SynthesizeNonblocking(spec) instead
//   --json               machine-readable report on stdout
//   --witness-dir <dir>  write witness traces as <dir>/<name>-witness-K.jsonl
//                        (parametric witnesses as
//                        <name>-param-witness-K.{trace,schedule}.jsonl)
//
// Exit codes (CI contract):
//   0  protocol passes: nonblocking, no lint errors, conclusive graphs
//   1  usage or infrastructure error
//   2  Fundamental Nonblocking Theorem violations (C1/C2), or a
//      parametric violation concretized to a witness execution
//   3  lint errors (defective spec) without theorem violations
//   4  inconclusive: state graph truncated or unavailable, or the
//      parametric stage could not settle the all-n verdict
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/buffer_synthesis.h"
#include "analysis/verifier.h"
#include "obs/export.h"
#include "protocols/registry.h"
#include "cli_common.h"

using namespace nbcp;
using cli::Fail;
using cli::LoadSpec;
using cli::ParseSize;
using cli::ProtocolLabel;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: nbcp-verify <builtin-name|file.nbcp> [-n N] [--max-nodes N]\n"
      "                   [--no-reduction] [--compare-unreduced]\n"
      "                   [--no-failure-graph] [--no-witnesses]\n"
      "                   [--parametric] [--param-max-n N]\n"
      "                   [--synthesized] [--json] [--witness-dir DIR]\n"
      "       nbcp-verify list\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string target = argv[1];
  if (target == "list") {
    for (const std::string& name : BuiltinProtocolNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (target == "--help" || target == "-h") return Usage();

  VerifyOptions options;
  bool json = false;
  bool synthesized = false;
  std::string witness_dir;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-n") {
      if (++i >= argc || !ParseSize(argv[i], &options.n) || options.n == 0) {
        return Fail("-n requires a positive integer");
      }
    } else if (arg == "--max-nodes") {
      if (++i >= argc || !ParseSize(argv[i], &options.max_nodes) ||
          options.max_nodes == 0) {
        return Fail("--max-nodes requires a positive integer");
      }
      options.failure_max_nodes = options.max_nodes;
    } else if (arg == "--no-reduction") {
      options.symmetry_reduction = false;
    } else if (arg == "--compare-unreduced") {
      options.compare_unreduced = true;
    } else if (arg == "--no-failure-graph") {
      options.with_failure_graph = false;
    } else if (arg == "--no-witnesses") {
      options.witnesses = false;
    } else if (arg == "--parametric") {
      options.parametric = true;
    } else if (arg == "--param-max-n") {
      size_t max_n = 0;
      if (++i >= argc || !ParseSize(argv[i], &max_n) || max_n < 2) {
        return Fail("--param-max-n requires an integer >= 2");
      }
      options.param.cutoff_max_n = max_n;
      options.param.concretize_max_n = max_n;
    } else if (arg == "--synthesized") {
      synthesized = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--witness-dir") {
      if (++i >= argc) return Fail("--witness-dir requires a directory");
      witness_dir = argv[i];
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return Usage();
    }
  }

  auto spec = LoadSpec(target);
  if (!spec.ok()) return Fail(spec.status().ToString());
  std::string label = ProtocolLabel(target, *spec);
  if (synthesized) {
    auto fixed = SynthesizeNonblocking(*spec, options.n);
    if (!fixed.ok()) {
      return Fail("synthesis failed: " + fixed.status().ToString());
    }
    spec = std::move(fixed);
    label += "-synthesized";
  }

  auto report = VerifyProtocol(*spec, label, options);
  if (!report.ok()) return Fail(report.status().ToString());

  std::vector<std::string> witness_files;
  if (!witness_dir.empty()) {
    size_t index = 0;
    for (const WitnessEntry& entry : report->witnesses) {
      if (entry.trace_jsonl.empty()) continue;
      std::string path = witness_dir + "/" + label + "-witness-" +
                         std::to_string(index++) + ".jsonl";
      Status written = WriteFile(path, entry.trace_jsonl);
      if (!written.ok()) return Fail(written.ToString());
      witness_files.push_back(path);
    }
    index = 0;
    for (const ParamWitnessEntry& entry : report->parametric.witnesses) {
      std::string base = witness_dir + "/" + label + "-param-witness-" +
                         std::to_string(index++);
      if (!entry.trace_jsonl.empty()) {
        std::string path = base + ".trace.jsonl";
        Status written = WriteFile(path, entry.trace_jsonl);
        if (!written.ok()) return Fail(written.ToString());
        witness_files.push_back(path);
      }
      if (!entry.schedule_jsonl.empty()) {
        std::string path = base + ".schedule.jsonl";
        Status written = WriteFile(path, entry.schedule_jsonl);
        if (!written.ok()) return Fail(written.ToString());
        witness_files.push_back(path);
      }
    }
  }

  if (json) {
    Json doc = VerificationReportToJson(*report);
    Json files = Json::Array();
    for (const std::string& path : witness_files) files.Append(path);
    doc["witness_files"] = std::move(files);
    std::printf("%s\n", doc.Dump(2).c_str());
  } else {
    std::printf("%s", report->Render(*spec).c_str());
    for (const std::string& path : witness_files) {
      std::printf("witness trace: %s\n", path.c_str());
    }
  }
  return report->ExitCode();
}
